package analyzers

import (
	"go/ast"
	"go/token"
)

// LockOrder enforces the deque-locking discipline of the work-stealing
// engine (DESIGN.md §8). Two rules, both per function body over the
// statement CFG:
//
//  1. No self-deadlock: after mu.Lock(), another Lock() on the same
//     receiver chain must not be reachable without a non-deferred
//     Unlock() in between. A deferred Unlock runs at function exit and
//     therefore never breaks the path to a second Lock.
//
//  2. Ordered pair acquisition: while one mutex is held, taking a
//     second mutex reached through the same final field (q.mu and
//     dst.mu — "same-typed" in practice) is only legal when an
//     index-ordering comparison (<, >, <=, >=) appears earlier in the
//     function, the way wsDeque.stealInto compares deque indices
//     before locking victim and destination in a fixed order.
//
// The analysis is syntactic: receiver chains are compared textually
// (selectorChain), and any ordering comparison before the outer Lock
// counts as the guard — the analyzer cannot prove the comparison is
// about these two mutexes, only that the function establishes an order
// before nesting.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc: "nested mutex Lock calls on same-typed receivers need an index-ordering guard " +
		"(as in wsDeque.stealInto), and no Lock may be reachable twice on one receiver " +
		"without an intervening Unlock",
	Run: runLockOrder,
}

// lockSite is one Lock/Unlock call statement inside a function body.
type lockSite struct {
	node     *cfgNode
	call     *ast.CallExpr
	chain    string // receiver chain, e.g. "q.mu"
	unlock   bool
	deferred bool
}

func runLockOrder(pass *Pass) {
	for _, f := range pass.files() {
		eachFuncBody(f, func(name string, recv *ast.FieldList, body *ast.BlockStmt) {
			checkLockOrderFunc(pass, body)
		})
	}
}

// lockCall destructures expr as <chain>.Lock() / <chain>.Unlock()
// (including the RLock/RUnlock spellings) and returns the chain.
func lockCall(expr ast.Expr) (call *ast.CallExpr, chain string, unlock, ok bool) {
	c, isCall := expr.(*ast.CallExpr)
	if !isCall || len(c.Args) != 0 {
		return nil, "", false, false
	}
	sel, isSel := c.Fun.(*ast.SelectorExpr)
	if !isSel {
		return nil, "", false, false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		unlock = false
	case "Unlock", "RUnlock":
		unlock = true
	default:
		return nil, "", false, false
	}
	chain = selectorChain(sel.X)
	if chain == "" {
		return nil, "", false, false
	}
	return c, chain, unlock, true
}

func checkLockOrderFunc(pass *Pass, body *ast.BlockStmt) {
	var sites []lockSite
	funcStmts(body, func(s ast.Stmt) {
		switch s := s.(type) {
		case *ast.ExprStmt:
			if call, chain, unlock, ok := lockCall(s.X); ok {
				sites = append(sites, lockSite{call: call, chain: chain, unlock: unlock})
			}
		case *ast.DeferStmt:
			if call, chain, unlock, ok := lockCall(s.Call); ok {
				sites = append(sites, lockSite{call: call, chain: chain, unlock: unlock, deferred: true})
			}
		}
	})
	locks := 0
	for _, s := range sites {
		if !s.unlock {
			locks++
		}
	}
	if locks == 0 {
		return
	}

	g := buildCFG(body)
	// Attach CFG nodes: the site statements are exactly the ExprStmt /
	// DeferStmt wrappers, which funcStmts and buildCFG agree on.
	stmtOf := make(map[*ast.CallExpr]ast.Stmt)
	funcStmts(body, func(s ast.Stmt) {
		switch s := s.(type) {
		case *ast.ExprStmt:
			if c, ok := s.X.(*ast.CallExpr); ok {
				stmtOf[c] = s
			}
		case *ast.DeferStmt:
			stmtOf[s.Call] = s
		}
	})
	for i := range sites {
		sites[i].node = g.node(stmtOf[sites[i].call])
	}

	hasOrderingGuardBefore := func(pos token.Pos) bool {
		found := false
		funcStmts(body, func(s ast.Stmt) {
			if found || s.Pos() >= pos {
				return
			}
			ast.Inspect(s, func(n ast.Node) bool {
				if found {
					return false
				}
				if _, ok := n.(*ast.FuncLit); ok {
					return false
				}
				if be, ok := n.(*ast.BinaryExpr); ok && be.Pos() < pos {
					switch be.Op {
					case token.LSS, token.GTR, token.LEQ, token.GEQ:
						found = true
						return false
					}
				}
				return true
			})
		})
		return found
	}

	isNode := func(want *cfgNode) func(*cfgNode) bool {
		return func(n *cfgNode) bool { return n == want }
	}
	unlockKill := func(chain string) func(*cfgNode) bool {
		kills := make(map[*cfgNode]bool)
		for _, s := range sites {
			if s.unlock && !s.deferred && s.chain == chain && s.node != nil {
				kills[s.node] = true
			}
		}
		return func(n *cfgNode) bool { return kills[n] }
	}

	for i, outer := range sites {
		if outer.unlock || outer.node == nil || outer.deferred {
			continue
		}
		kill := unlockKill(outer.chain)

		// Rule 1: another Lock on the same chain reachable with the
		// lock still held.
		for j, inner := range sites {
			if inner.unlock || inner.node == nil || inner.deferred || inner.chain != outer.chain {
				continue
			}
			if i == j {
				// Self via a loop back-edge counts too.
				if g.canReach(outer.node, isNode(outer.node), kill) {
					pass.Reportf(inner.call.Pos(),
						"%s.Lock() is reachable again before %s.Unlock(): possible self-deadlock", outer.chain, outer.chain)
				}
				continue
			}
			if g.canReach(outer.node, isNode(inner.node), kill) {
				pass.Reportf(inner.call.Pos(),
					"second %s.Lock() reachable while the first is still held; unlock before relocking", inner.chain)
			}
		}

		// Rule 2: nested acquisition of a same-typed sibling mutex
		// needs an ordering guard earlier in the function.
		for _, inner := range sites {
			if inner.unlock || inner.node == nil || inner.chain == outer.chain {
				continue
			}
			if chainLastComponent(inner.chain) != chainLastComponent(outer.chain) {
				continue
			}
			if !g.canReach(outer.node, isNode(inner.node), kill) {
				continue
			}
			if inner.call.Pos() <= outer.call.Pos() {
				// Report each unordered pair once, at the inner lock.
				continue
			}
			if !hasOrderingGuardBefore(outer.call.Pos()) {
				pass.Reportf(inner.call.Pos(),
					"%s.Lock() while %s is held: same-typed mutexes must be acquired in index order "+
						"behind an ordering comparison (see wsDeque.stealInto)", inner.chain, outer.chain)
			}
		}
	}
}
