package analyzers

import (
	"go/ast"
	"go/token"
)

// goroutinePkgs are the packages whose goroutines must be joined: the
// mining engine, the service layer, and the store. (The simulated
// cluster schedules its own virtual workers and is exempt.)
var goroutinePkgs = map[string]bool{
	"repro/internal/eclat":   true,
	"repro/internal/service": true,
	"repro/internal/store":   true,
}

// GoroutineJoin enforces the no-leaked-goroutines rule of the hot
// packages: every `go` statement must come with join evidence visible
// in the function — a sync.WaitGroup Add/Wait in the spawning function
// or Done in the spawned body, a channel the spawned body signals and
// the function receives from, or the spawned body selecting on
// ctx.Done(). The paper's asynchronous phase ends with a barrier; a
// goroutine nothing waits for is either a leak or a write racing the
// result collection.
//
// Like the rest of the suite this is syntactic evidence-checking, not a
// proof: the analyzer accepts the named shapes and anything else needs
// a //reprolint:ignore with a reason (which is exactly where a
// deliberate fire-and-forget should be documented).
var GoroutineJoin = &Analyzer{
	Name: "goroutinejoin",
	Doc: "every go statement in internal/eclat, internal/service, and internal/store must " +
		"be joined: WaitGroup Add/Done/Wait, a channel the spawner receives from, or a " +
		"select on ctx.Done() in the spawned body",
	Run: runGoroutineJoin,
}

func runGoroutineJoin(pass *Pass) {
	if !goroutinePkgs[pass.Pkg.ImportPath] {
		return
	}
	wgNames := collectWaitGroupNames(pass)
	for _, f := range pass.files() {
		// Walk with the stack so each go statement can find its
		// innermost enclosing function body — the scope whose join
		// evidence counts.
		walkWithStack(f.AST, func(n ast.Node, stack []ast.Node) {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return
			}
			body := enclosingFuncBody(stack)
			if body == nil {
				return
			}
			if goStmtJoined(gs, body, wgNames) {
				return
			}
			pass.Reportf(gs.Pos(), "goroutine is never joined: add WaitGroup Add/Done/Wait, receive from a channel it signals, or select on ctx.Done() in its body")
		})
	}
}

// collectWaitGroupNames gathers every identifier declared with type
// sync.WaitGroup / *sync.WaitGroup anywhere in the package — struct
// fields, variables, and parameters. Matching is by final name ("wg"
// in m.wg), which is as precise as syntax gets.
func collectWaitGroupNames(pass *Pass) map[string]bool {
	names := make(map[string]bool)
	for _, f := range pass.files() {
		ast.Inspect(f.AST, func(n ast.Node) bool {
			field, ok := n.(*ast.Field)
			if !ok {
				vs, ok := n.(*ast.ValueSpec)
				if !ok {
					return true
				}
				if vs.Type != nil && isWaitGroupType(f, vs.Type) {
					for _, name := range vs.Names {
						names[name.Name] = true
					}
				}
				return true
			}
			if isWaitGroupType(f, field.Type) {
				for _, name := range field.Names {
					names[name.Name] = true
				}
			}
			return true
		})
	}
	return names
}

// isWaitGroupType reports whether the type expression denotes
// sync.WaitGroup or *sync.WaitGroup.
func isWaitGroupType(f *File, typ ast.Expr) bool {
	if star, ok := typ.(*ast.StarExpr); ok {
		typ = star.X
	}
	path, name, ok := resolveQualified(f, typ)
	return ok && path == "sync" && name == "WaitGroup"
}

// goStmtJoined looks for join evidence for one go statement.
func goStmtJoined(gs *ast.GoStmt, enclosing *ast.BlockStmt, wgNames map[string]bool) bool {
	// (a) The spawning function works a WaitGroup: Add or Wait on a
	// known WaitGroup chain anywhere in the enclosing body.
	if mentionsWaitGroupCall(enclosing, wgNames, "Add") || mentionsWaitGroupCall(enclosing, wgNames, "Wait") {
		return true
	}
	lit, isLit := gs.Call.Fun.(*ast.FuncLit)
	if !isLit {
		return false
	}
	// (b) The spawned body calls Done on a WaitGroup (joined by a Wait
	// that may live in another method, e.g. Shutdown).
	if mentionsWaitGroupCall(lit.Body, wgNames, "Done") {
		return true
	}
	// (c) The spawned body selects/receives on a context's Done
	// channel: <-something.Done().
	if mentionsCtxDoneReceive(lit.Body) {
		return true
	}
	// (d) The spawned body signals a channel the enclosing function
	// receives from.
	for _, ch := range channelsSignaled(lit.Body) {
		if receivesFromChannel(enclosing, lit, ch) {
			return true
		}
	}
	return false
}

// mentionsWaitGroupCall reports whether root contains a call
// <chain>.<method>() whose chain ends in a known WaitGroup name.
func mentionsWaitGroupCall(root ast.Node, wgNames map[string]bool, method string) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != method {
			return true
		}
		chain := selectorChain(sel.X)
		if chain != "" && wgNames[chainLastComponent(chain)] {
			found = true
			return false
		}
		return true
	})
	return found
}

// mentionsCtxDoneReceive reports whether root contains `<-x.Done()`,
// the receive that distinguishes a context watch from a WaitGroup Done
// call.
func mentionsCtxDoneReceive(root ast.Node) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if found {
			return false
		}
		un, ok := n.(*ast.UnaryExpr)
		if !ok || un.Op != token.ARROW {
			return true
		}
		call, ok := un.X.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if ok && sel.Sel.Name == "Done" {
			found = true
			return false
		}
		return true
	})
	return found
}

// channelsSignaled returns the identifier names of channels the body
// sends on or closes.
func channelsSignaled(body *ast.BlockStmt) []string {
	var out []string
	seen := make(map[string]bool)
	add := func(expr ast.Expr) {
		if id, ok := expr.(*ast.Ident); ok && !seen[id.Name] {
			seen[id.Name] = true
			out = append(out, id.Name)
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.SendStmt:
			add(x.Chan)
		case *ast.CallExpr:
			if fun, ok := x.Fun.(*ast.Ident); ok && fun.Name == "close" && len(x.Args) == 1 {
				add(x.Args[0])
			}
		}
		return true
	})
	return out
}

// receivesFromChannel reports whether the enclosing body (outside the
// spawned literal) receives from the named channel: `<-ch` anywhere,
// including select cases and range-over-channel.
func receivesFromChannel(body *ast.BlockStmt, exclude *ast.FuncLit, name string) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found || n == ast.Node(exclude) {
			return false
		}
		switch x := n.(type) {
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				if id, ok := x.X.(*ast.Ident); ok && id.Name == name {
					found = true
					return false
				}
			}
		case *ast.RangeStmt:
			if id, ok := x.X.(*ast.Ident); ok && id.Name == name {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
