// Package tidlist implements the vertical (inverted) database layout of
// section 4.2 of the paper: each itemset is represented by the sorted list
// of transaction identifiers that contain it, and the support of a
// candidate k-itemset is the length of the intersection of the tid-lists
// of two of its (k-1)-subsets.
//
// The package provides plain and short-circuited intersections (section
// 5.3, "Short-Circuited Intersections"), construction of 2-itemset
// tid-lists from a horizontal partition, and ordered concatenation of
// partial per-partition lists into global lists — valid because block
// partitions carry disjoint, monotonically increasing TID ranges (section
// 6.3).
//
// The sorted slice is one of two pluggable representations behind the Set
// abstraction (see set.go): SparseList (this file's List) keeps the
// paper's scalar merge kernels, and Bitset (bitset.go) packs 64 TIDs per
// word and intersects with AND + popcount. ChooseRepr picks between them
// per equivalence class by density, and the IntersectSets/DiffSets
// dispatchers let the mining recursion stay representation-agnostic.
package tidlist

import (
	"fmt"

	"repro/internal/db"
	"repro/internal/itemset"
)

// List is a tid-list: transaction identifiers in strictly increasing
// order. Support of the associated itemset is len(list).
type List []itemset.TID

// Clone returns an independent copy of l.
func (l List) Clone() List {
	c := make(List, len(l))
	copy(c, l)
	return c
}

// Support returns the number of transactions containing the itemset, i.e.
// the cardinality of the tid-list.
func (l List) Support() int { return len(l) }

// Validate checks the strictly-increasing invariant.
func (l List) Validate() error {
	for i := 1; i < len(l); i++ {
		if l[i-1] >= l[i] {
			return fmt.Errorf("tidlist: not strictly increasing at index %d (%d >= %d)", i, l[i-1], l[i])
		}
	}
	return nil
}

// Intersect returns the sorted intersection of a and b.
func Intersect(a, b List) List {
	return IntersectInto(make(List, 0, min(len(a), len(b))), a, b)
}

// IntersectInto appends the intersection of a and b to dst (which is
// truncated first) and returns it; it lets the Eclat inner loop reuse a
// scratch buffer across intersections.
func IntersectInto(dst, a, b List) List {
	dst = dst[:0]
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			dst = append(dst, a[i])
			i++
			j++
		}
	}
	return dst
}

// IntersectShortCircuit intersects a and b but aborts as soon as the
// result can no longer reach minsup: after m mismatches the support of the
// result is bounded above by min(len(a), len(b)) - m (the paper's example:
// minsup 100, |AB| = 119, stop at 20 mismatches in AB). It returns the
// (possibly partial) intersection, the number of comparison operations
// performed, and ok=false if the bound was hit.
//
// When ok is false the returned list must not be used as a tid-list — it
// is an incomplete prefix retained only so callers can reuse its storage.
func IntersectShortCircuit(dst, a, b List, minsup int) (result List, ops int, ok bool) {
	dst = dst[:0]
	if min(len(a), len(b)) < minsup {
		return dst, 0, false
	}
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		ops++
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			dst = append(dst, a[i])
			i++
			j++
		}
		// The result can gain at most min(remaining_a, remaining_b) more
		// matches; abort once even that cannot reach minsup.
		if len(dst)+min(len(a)-i, len(b)-j) < minsup {
			return dst, ops, false
		}
	}
	if len(dst) < minsup {
		return dst, ops, false
	}
	return dst, ops, true
}

// Diff returns the sorted difference a \ b. Difference lists ("diffsets")
// are the representation of the dEclat refinement: deep in the lattice a
// candidate's diffset is far smaller than its tid-list, because supports
// shrink slowly within an equivalence class.
func Diff(a, b List) List {
	return DiffInto(make(List, 0, len(a)), a, b)
}

// DiffInto appends a \ b to dst (truncated first) and returns it.
func DiffInto(dst, a, b List) List {
	dst = dst[:0]
	j := 0
	for _, x := range a {
		for j < len(b) && b[j] < x {
			j++
		}
		if j < len(b) && b[j] == x {
			continue
		}
		dst = append(dst, x)
	}
	return dst
}

// Pair keys a 2-itemset {A, B} with A < B, the granularity at which the
// vertical transformation operates (tid-lists exist per frequent
// 2-itemset; 1-itemset lists are never built, per section 5.1).
type Pair struct {
	A, B itemset.Item
}

// MakePair normalizes item order.
func MakePair(a, b itemset.Item) Pair {
	if a > b {
		a, b = b, a
	}
	return Pair{a, b}
}

// Itemset returns the pair as a 2-itemset.
func (p Pair) Itemset() itemset.Itemset { return itemset.Itemset{p.A, p.B} }

// BuildPairs scans a horizontal partition once and returns the partial
// tid-lists of every pair in want. This is Eclat's second local scan
// ("each processor scans its local database and constructs partial
// tid-lists for all the frequent 2-itemsets"). Lists come out sorted
// because transactions are visited in TID order.
func BuildPairs(part *db.Database, want map[Pair]bool) map[Pair]List {
	out := make(map[Pair]List, len(want))
	for _, tx := range part.Transactions {
		items := tx.Items
		for i := 0; i < len(items); i++ {
			for j := i + 1; j < len(items); j++ {
				p := Pair{items[i], items[j]}
				if !want[p] {
					continue
				}
				out[p] = append(out[p], tx.TID)
			}
		}
	}
	return out
}

// ConcatPartitions concatenates per-partition partial lists in partition
// order. Because block partitions have disjoint increasing TID ranges, the
// concatenation is already sorted; Validate is run in tests to prove it.
// Nil partials are skipped (a partition may not contain the itemset).
func ConcatPartitions(partials []List) List {
	var total int
	for _, p := range partials {
		total += len(p)
	}
	out := make(List, 0, total)
	for _, p := range partials {
		out = append(out, p...)
	}
	return out
}

// SizeBytes returns the encoded size of the list (4 bytes per TID), used
// by the communication and disk cost models.
func (l List) SizeBytes() int64 { return 4 * int64(len(l)) }
