package tidlist

import (
	"bytes"
	"testing"

	"repro/internal/itemset"
)

func TestListBytesRoundTrip(t *testing.T) {
	cases := []List{
		nil,
		{0},
		{5, 9, 63, 64, 65, 900},
		{0, 1, 2, 3, 4, 5, 6, 7},
	}
	for _, l := range cases {
		enc := AppendListBytes(nil, l)
		if len(enc) != 4*len(l) {
			t.Fatalf("encoded %v to %d bytes, want %d", l, len(enc), 4*len(l))
		}
		if got := EncodedLen(l); got != len(enc) {
			t.Fatalf("EncodedLen(%v) = %d, want %d", l, got, len(enc))
		}
		dec, err := ListFromBytes(enc)
		if err != nil {
			t.Fatalf("decode %v: %v", l, err)
		}
		if len(dec) != len(l) {
			t.Fatalf("decoded %v from %v", dec, l)
		}
		for i := range l {
			if dec[i] != l[i] {
				t.Fatalf("decoded %v from %v", dec, l)
			}
		}
		if bytes.Compare(AppendListBytes(nil, dec), enc) != 0 {
			t.Fatalf("re-encode of %v differs", l)
		}
	}
}

func TestListFromBytesRejectsOddLength(t *testing.T) {
	if _, err := ListFromBytes(make([]byte, 5)); err == nil {
		t.Fatal("want error for 5-byte sparse payload")
	}
}

func TestListFromBytesAliasesAlignedInput(t *testing.T) {
	enc := AppendListBytes(nil, List{10, 20, 30})
	dec, err := ListFromBytes(enc)
	if err != nil {
		t.Fatal(err)
	}
	// The decoder may only alias on little-endian aligned input; when it
	// does, the view must track the backing bytes. Either way the values
	// must be correct, checked above; here we pin the no-copy property on
	// the platform CI runs on (little-endian, slice data 4-aligned).
	if !nativeLittleEndian {
		t.Skip("big-endian host: decoder copies by design")
	}
	enc[0] = 99 // rewrite first tid's low byte
	if dec[0] != 99 {
		t.Fatalf("decoded list did not alias its input: got %d", dec[0])
	}
}

func TestListFromBytesCopiesMisalignedInput(t *testing.T) {
	buf := make([]byte, 13)
	enc := AppendListBytes(buf[:1], List{10, 20, 30})
	dec, err := ListFromBytes(enc[1:])
	if err != nil {
		t.Fatal(err)
	}
	want := List{10, 20, 30}
	for i := range want {
		if dec[i] != want[i] {
			t.Fatalf("decoded %v, want %v", dec, want)
		}
	}
}

func TestBitsetBytesRoundTrip(t *testing.T) {
	cases := [][]itemset.TID{
		nil,
		{0},
		{5, 9, 63, 64, 65, 900},
		{128, 129, 191},
	}
	for _, tids := range cases {
		var bs Bitset
		bs.SetTIDs(tids)
		enc := AppendBitsetBytes(nil, &bs)
		if got := EncodedLen(&bs); got != len(enc) {
			t.Fatalf("EncodedLen = %d, want %d", got, len(enc))
		}
		dec, err := BitsetFromBytes(enc)
		if err != nil {
			t.Fatalf("decode %v: %v", tids, err)
		}
		if dec.Support() != len(tids) {
			t.Fatalf("decoded support %d, want %d", dec.Support(), len(tids))
		}
		if got := TIDsOf(dec); len(got) != len(tids) {
			t.Fatalf("decoded %v, want %v", got, tids)
		} else {
			for i := range tids {
				if got[i] != tids[i] {
					t.Fatalf("decoded %v, want %v", got, tids)
				}
			}
		}
		if !bytes.Equal(AppendBitsetBytes(nil, dec), enc) {
			t.Fatalf("re-encode of %v differs", tids)
		}
	}
}

func TestBitsetFromBytesRejectsMalformed(t *testing.T) {
	var bs Bitset
	bs.SetTIDs([]itemset.TID{1, 2, 3})
	good := AppendBitsetBytes(nil, &bs)

	for name, mutate := range map[string]func([]byte) []byte{
		"short":          func(b []byte) []byte { return b[:4] },
		"ragged words":   func(b []byte) []byte { return append(b, 0xff) },
		"bad base":       func(b []byte) []byte { b[0] = 3; return b },
		"bad count":      func(b []byte) []byte { b[4]++; return b },
		"untrimmed word": func(b []byte) []byte { copy(b[8:16], make([]byte, 8)); b[4] = 0; return b },
	} {
		b := mutate(append([]byte(nil), good...))
		if _, err := BitsetFromBytes(b); err == nil {
			t.Errorf("%s: want decode error", name)
		}
	}
}

func TestBitsetFromBytesCopiesMisalignedInput(t *testing.T) {
	var bs Bitset
	bs.SetTIDs([]itemset.TID{3, 70, 130})
	buf := make([]byte, 1, 64)
	enc := AppendBitsetBytes(buf, &bs)
	dec, err := BitsetFromBytes(enc[1:])
	if err != nil {
		t.Fatal(err)
	}
	if got := TIDsOf(dec); len(got) != 3 || got[0] != 3 || got[1] != 70 || got[2] != 130 {
		t.Fatalf("decoded %v, want [3 70 130]", got)
	}
}
