package tidlist

import (
	"encoding/binary"
	"sort"
	"testing"

	"repro/internal/itemset"
)

// fuzzList decodes raw fuzz bytes into a sorted duplicate-free tid-list.
// Every pair of bytes becomes one candidate tid, reduced modulo a
// universe derived from the same input so the fuzzer explores both dense
// (small universe) and sparse (large universe) regimes — the two sides
// of the adaptive policy. Universes above 64K spread the tids across
// multiple roaring chunks (stretched so candidates land near chunk
// boundaries), exercising the key-merge and container-boundary paths.
func fuzzList(raw []byte, universe uint32) List {
	if universe == 0 {
		universe = 1
	}
	seen := map[itemset.TID]bool{}
	for i := 0; i+1 < len(raw); i += 2 {
		v := uint32(binary.LittleEndian.Uint16(raw[i:]))
		if universe > 1<<16 {
			// Scale 16-bit candidates up so they cover the wider universe;
			// keep the low bits so values straddle chunk boundaries.
			v = (v * (universe >> 16)) % universe
		} else {
			v %= universe
		}
		seen[itemset.TID(v)] = true
	}
	out := make(List, 0, len(seen))
	for tid := range seen {
		out = append(out, tid)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// fuzzUniverse maps the selector byte onto 64..2^23 tids, covering
// densities from well above DenseThreshold down to well below it and
// tid spans from a fraction of one roaring chunk up to 128 chunks.
func fuzzUniverse(sel uint8) uint32 { return 64 << (sel % 18) }

func fuzzSeed(f *testing.F) {
	f.Add([]byte{1, 0, 2, 0, 3, 0}, []byte{2, 0, 3, 0, 4, 0}, uint8(0), uint8(2))
	f.Add([]byte{}, []byte{10, 0}, uint8(3), uint8(0))
	f.Add([]byte{255, 255, 0, 0}, []byte{255, 255}, uint8(10), uint8(1))
	f.Add([]byte{7, 1, 9, 1, 11, 1, 13, 1}, []byte{7, 1, 13, 1}, uint8(5), uint8(30))
}

// FuzzIntersectKernels proves the three dispatch targets (sparse merge,
// dense AND+popcount, mixed probe) agree with the reference sparse
// intersection for every operand pairing.
func FuzzIntersectKernels(f *testing.F) {
	fuzzSeed(f)
	f.Fuzz(func(t *testing.T, ra, rb []byte, sel, _ uint8) {
		u := fuzzUniverse(sel)
		a, b := fuzzList(ra, u), fuzzList(rb, u)
		want := Intersect(a, b)
		for _, combo := range reprCombos {
			var ks KernelStats
			got, ops := IntersectSets(nil, asRepr(a, combo[0]), asRepr(b, combo[1]), &ks)
			if !equalTIDs(TIDsOf(got), want) {
				t.Fatalf("combo %v/%v: got %v, want %v (a=%v b=%v)", combo[0], combo[1], TIDsOf(got), want, a, b)
			}
			if got.Support() != len(want) || ops < 0 {
				t.Fatalf("combo %v/%v: support %d ops %d, want support %d", combo[0], combo[1], got.Support(), ops, len(want))
			}
		}
	})
}

// FuzzDiffKernels proves the difference kernels (merge, AND NOT, probe)
// agree with the reference sparse difference for every operand pairing.
func FuzzDiffKernels(f *testing.F) {
	fuzzSeed(f)
	f.Fuzz(func(t *testing.T, ra, rb []byte, sel, _ uint8) {
		u := fuzzUniverse(sel)
		a, b := fuzzList(ra, u), fuzzList(rb, u)
		want := Diff(a, b)
		for _, combo := range reprCombos {
			var ks KernelStats
			got, ops := DiffSets(nil, asRepr(a, combo[0]), asRepr(b, combo[1]), &ks)
			if !equalTIDs(TIDsOf(got), want) {
				t.Fatalf("combo %v/%v: got %v, want %v (a=%v b=%v)", combo[0], combo[1], TIDsOf(got), want, a, b)
			}
			if got.Support() != len(want) || ops < 0 {
				t.Fatalf("combo %v/%v: support %d ops %d", combo[0], combo[1], got.Support(), ops)
			}
		}
	})
}

// FuzzShortCircuitKernels proves the short-circuit contract holds for
// every kernel: ok is exactly |a∩b| >= minsup, the content is the full
// intersection when ok, and an aborted result is still safe to reuse as
// scratch (the partial-prefix contract).
func FuzzShortCircuitKernels(f *testing.F) {
	fuzzSeed(f)
	f.Fuzz(func(t *testing.T, ra, rb []byte, sel, ms uint8) {
		u := fuzzUniverse(sel)
		a, b := fuzzList(ra, u), fuzzList(rb, u)
		minsup := int(ms)
		full := Intersect(a, b)
		for _, combo := range reprCombos {
			var ks KernelStats
			got, ops, ok := IntersectSetsSC(nil, asRepr(a, combo[0]), asRepr(b, combo[1]), minsup, &ks)
			if ok != (len(full) >= minsup) {
				t.Fatalf("combo %v/%v minsup %d: ok=%v but |∩|=%d", combo[0], combo[1], minsup, ok, len(full))
			}
			if ok && !equalTIDs(TIDsOf(got), full) {
				t.Fatalf("combo %v/%v minsup %d: content mismatch", combo[0], combo[1], minsup)
			}
			if ops < 0 {
				t.Fatalf("combo %v/%v: negative ops", combo[0], combo[1])
			}
			// The only valid use of an aborted result: scratch storage.
			again, _ := IntersectSets(got, asRepr(a, combo[0]), asRepr(b, combo[1]), &ks)
			if !equalTIDs(TIDsOf(again), full) {
				t.Fatalf("combo %v/%v: result unusable as scratch after SC", combo[0], combo[1])
			}
		}
	})
}

// FuzzRoundTrip proves sparse -> packed -> sparse conversion is lossless
// for both packed encodings and that all representations agree on
// Support, Bounds, HashTIDs, Contains, and the stable serialization.
func FuzzRoundTrip(f *testing.F) {
	fuzzSeed(f)
	f.Fuzz(func(t *testing.T, ra, _ []byte, sel, _ uint8) {
		l := fuzzList(ra, fuzzUniverse(sel))
		slo, shi, sok := Bounds(l)
		var ks KernelStats
		for _, r := range []Repr{ReprBitset, ReprRoaring} {
			packed := Convert(l, r, &ks)
			back := TIDsOf(Convert(packed, ReprSparse, &ks))
			if !equalTIDs(back, l) {
				t.Fatalf("%v round trip: %v -> %v", r, l, back)
			}
			if packed.Support() != len(l) {
				t.Fatalf("%v Support %d, want %d", r, packed.Support(), len(l))
			}
			if HashTIDs(packed) != HashTIDs(l) {
				t.Fatalf("%v HashTIDs disagrees with sparse", r)
			}
			plo, phi, pok := Bounds(packed)
			if sok != pok || slo != plo || shi != phi {
				t.Fatalf("Bounds disagree: sparse %d..%d/%v %v %d..%d/%v", slo, shi, sok, r, plo, phi, pok)
			}
			if n, _ := EncodedSize(l, r); len(l) > 0 && n != packed.SizeBytes() {
				t.Fatalf("%v EncodedSize %d != SizeBytes %d", r, n, packed.SizeBytes())
			}
		}
		// Roaring-specific: the stable serialization round trips and
		// Contains answers agree with membership near chunk boundaries.
		roaring := NewRoaring(l)
		dec, err := RoaringFromBytes(AppendRoaringBytes(nil, roaring))
		if err != nil {
			t.Fatalf("RoaringFromBytes: %v", err)
		}
		if !equalTIDs(dec.TIDs(), l) {
			t.Fatalf("roaring serialization round trip: %v -> %v", l, dec.TIDs())
		}
		member := map[itemset.TID]bool{}
		for _, tid := range l {
			member[tid] = true
		}
		for _, tid := range l {
			for _, probe := range []itemset.TID{tid, tid + 1, tid - 1} {
				if probe >= 0 && roaring.Contains(probe) != member[probe] {
					t.Fatalf("roaring Contains(%d) = %v, want %v", probe, roaring.Contains(probe), member[probe])
				}
			}
		}
	})
}
