package tidlist

import (
	"math/rand"
	"testing"

	"repro/internal/itemset"
)

func listEq(a, b List) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// randKwaySets builds k random sorted lists over [0, span) and re-encodes
// them round-robin across the three representations, so every fold mixes
// kernels.
func randKwaySets(rng *rand.Rand, k, span int, density float64) []Set {
	var ks KernelStats
	reprs := []Repr{ReprSparse, ReprBitset, ReprRoaring}
	out := make([]Set, k)
	for i := range out {
		var tids List
		for t := 0; t < span; t++ {
			if rng.Float64() < density {
				tids = append(tids, itemset.TID(t))
			}
		}
		out[i] = Convert(tids, reprs[i%len(reprs)], &ks)
	}
	return out
}

func TestIntersectKSetsSCMatchesChain(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 50; trial++ {
		k := 2 + rng.Intn(6)
		sets := randKwaySets(rng, k, 500+rng.Intn(1000), 0.3+0.5*rng.Float64())

		// Ground truth: an unbounded pairwise chain.
		var ks KernelStats
		acc := sets[0]
		for _, s := range sets[1:] {
			acc, _ = IntersectSets(nil, acc, s, &ks)
		}
		want := TIDsOf(acc)

		var kks KernelStats
		got, ops, folds, ok := IntersectKSetsSC(sets, 1, &kks)
		if len(want) > 0 != ok {
			t.Fatalf("trial %d: ok=%v with %d result tids at minsup 1", trial, ok, len(want))
		}
		// An empty running intersection may abort mid-chain even at
		// minsup 1; a successful fold must have visited every operand.
		if ok && folds != k-1 {
			t.Fatalf("trial %d: %d folds for %d sets, want %d", trial, folds, k, k-1)
		}
		if ok {
			if gotTids := TIDsOf(got); !listEq(gotTids, want) {
				t.Fatalf("trial %d: k-way result differs from chain (%d vs %d tids)",
					trial, len(gotTids), len(want))
			}
			if ops == 0 {
				t.Fatalf("trial %d: successful fold reported zero ops", trial)
			}
		}

		// The bound must hold: ok at minsup m means support >= m, and an
		// unreachable bound must abort without visiting every operand's
		// full cost (folds may still be k-1 when the last fold aborts).
		minsup := want.Support() + 1
		if minsup > 1 {
			part, _, aFolds, aOK := IntersectKSetsSC(sets, minsup, &kks)
			if aOK {
				t.Fatalf("trial %d: ok=true at minsup %d above true support %d",
					trial, minsup, want.Support())
			}
			if aFolds < 1 || aFolds > k-1 {
				t.Fatalf("trial %d: aborted fold count %d out of range", trial, aFolds)
			}
			_ = part // partial: unusable by contract, storage only
		}
	}
}

func TestIntersectKSetsSCDegenerate(t *testing.T) {
	var ks KernelStats
	if s, ops, folds, ok := IntersectKSetsSC(nil, 1, &ks); s != nil || ops != 0 || folds != 0 || ok {
		t.Fatalf("empty operands: got (%v, %d, %d, %v)", s, ops, folds, ok)
	}
	one := List{1, 5, 9}
	s, _, folds, ok := IntersectKSetsSC([]Set{one}, 2, &ks)
	if !ok || folds != 0 || !listEq(TIDsOf(s), one) {
		t.Fatalf("single operand: got (%v, folds=%d, ok=%v)", s, folds, ok)
	}
	if _, _, _, ok := IntersectKSetsSC([]Set{one}, 4, &ks); ok {
		t.Fatal("single operand below minsup reported ok")
	}
	// Operands must come back untouched after a fold.
	sets := []Set{List{1, 2, 3, 4}, List{2, 3, 4, 5}, List{3, 4, 5, 6}}
	res, _, _, ok := IntersectKSetsSC(sets, 1, &ks)
	if !ok || !listEq(TIDsOf(res), List{3, 4}) {
		t.Fatalf("fold result %v, want [3 4]", TIDsOf(res))
	}
	if !listEq(TIDsOf(sets[0]), List{1, 2, 3, 4}) || !listEq(TIDsOf(sets[2]), List{3, 4, 5, 6}) {
		t.Fatal("fold modified its operands")
	}
}
