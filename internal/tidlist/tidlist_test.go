package tidlist

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/db"
	"repro/internal/itemset"
)

func mk(tids ...itemset.TID) List { return List(tids) }

func TestIntersectBasic(t *testing.T) {
	// The paper's own example: T(AB) = {1,5,7,10,50}, T(AC) = {1,4,7,10,11}
	// => T(ABC) = {1,7,10}.
	ab := mk(1, 5, 7, 10, 50)
	ac := mk(1, 4, 7, 10, 11)
	got := Intersect(ab, ac)
	want := mk(1, 7, 10)
	if len(got) != len(want) {
		t.Fatalf("Intersect = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Intersect = %v, want %v", got, want)
		}
	}
}

func TestIntersectEdges(t *testing.T) {
	if got := Intersect(nil, mk(1, 2)); len(got) != 0 {
		t.Fatalf("nil ∩ x = %v", got)
	}
	if got := Intersect(mk(1, 2), nil); len(got) != 0 {
		t.Fatalf("x ∩ nil = %v", got)
	}
	if got := Intersect(mk(1, 3, 5), mk(2, 4, 6)); len(got) != 0 {
		t.Fatalf("disjoint ∩ = %v", got)
	}
	same := mk(2, 4, 9)
	got := Intersect(same, same)
	if len(got) != 3 {
		t.Fatalf("self ∩ = %v", got)
	}
}

func TestIntersectIntoReusesBuffer(t *testing.T) {
	buf := make(List, 0, 16)
	a, b := mk(1, 2, 3, 4), mk(2, 4, 6)
	out := IntersectInto(buf, a, b)
	if &out[:1][0] != &buf[:1][0] {
		t.Fatal("IntersectInto did not reuse the provided buffer")
	}
	if out.Support() != 2 {
		t.Fatalf("support = %d", out.Support())
	}
}

func TestShortCircuitMatchesPlainWhenFeasible(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		a := randomList(rng, 40, 200)
		b := randomList(rng, 40, 200)
		full := Intersect(a, b)
		for _, minsup := range []int{0, 1, len(full), len(full) + 1, 10} {
			got, _, ok := IntersectShortCircuit(nil, a, b, minsup)
			if len(full) >= minsup {
				if !ok {
					t.Fatalf("short-circuit aborted although |∩|=%d >= minsup=%d", len(full), minsup)
				}
				if len(got) != len(full) {
					t.Fatalf("short-circuit returned %d tids, want %d", len(got), len(full))
				}
				for i := range full {
					if got[i] != full[i] {
						t.Fatalf("short-circuit content mismatch")
					}
				}
			} else if ok {
				t.Fatalf("short-circuit claimed ok although |∩|=%d < minsup=%d", len(full), minsup)
			}
		}
	}
}

func TestShortCircuitAbortsEarly(t *testing.T) {
	// a and b share only their last element; with minsup == len(a) the very
	// first mismatch must abort the scan.
	a := mk(1, 2, 3, 4, 5, 100)
	b := mk(50, 60, 70, 80, 90, 100)
	_, ops, ok := IntersectShortCircuit(nil, a, b, 6)
	if ok {
		t.Fatal("should have aborted")
	}
	if ops > 2 {
		t.Fatalf("expected abort within 2 comparisons, took %d", ops)
	}
	// Infeasible before any work: shorter list below minsup.
	_, ops, ok = IntersectShortCircuit(nil, mk(1, 2), mk(1, 2, 3), 3)
	if ok || ops != 0 {
		t.Fatalf("infeasible case should cost 0 ops, got ops=%d ok=%v", ops, ok)
	}
}

func TestShortCircuitPaperExample(t *testing.T) {
	// minsup 100, |AB| = 119: the paper says we can stop after 20
	// mismatches in AB. Build AB with 119 tids of which the first 20 are
	// unique to AB, and AC disjoint apart from that.
	var ab, ac List
	for i := 0; i < 20; i++ {
		ab = append(ab, itemset.TID(i))
	}
	for i := 0; i < 99; i++ {
		ab = append(ab, itemset.TID(1000+2*i))
	}
	for i := 0; i < 200; i++ {
		ac = append(ac, itemset.TID(1000+2*i+1)) // interleaved, no matches
	}
	_, _, ok := IntersectShortCircuit(nil, ab, ac, 100)
	if ok {
		t.Fatal("intersection cannot reach support 100; must abort")
	}
}

func TestDiff(t *testing.T) {
	got := Diff(mk(1, 3, 5, 7), mk(3, 4, 7, 9))
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
	if got.Support() != 2 || got[0] != 1 || got[1] != 5 {
		t.Fatalf("Diff = %v, want [1 5]", got)
	}
	if len(Diff(nil, mk(1))) != 0 {
		t.Fatal("nil \\ x should be empty")
	}
	if got := Diff(mk(1, 2), nil); got.Support() != 2 {
		t.Fatalf("x \\ nil = %v", got)
	}
	same := mk(2, 4)
	if len(Diff(same, same)) != 0 {
		t.Fatal("x \\ x should be empty")
	}
}

// Property: |a \ b| + |a ∩ b| == |a|, and Diff agrees with a set oracle.
func TestDiffQuick(t *testing.T) {
	f := func(ra, rb []uint16) bool {
		a, b := toList(ra), toList(rb)
		diff := Diff(a, b)
		inter := Intersect(a, b)
		if len(diff)+len(inter) != len(a) {
			return false
		}
		inB := map[itemset.TID]bool{}
		for _, x := range b {
			inB[x] = true
		}
		for _, x := range diff {
			if inB[x] {
				return false
			}
		}
		return diff.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestValidate(t *testing.T) {
	if err := mk(1, 2, 9).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := mk(1, 1).Validate(); err == nil {
		t.Fatal("duplicate should fail")
	}
	if err := mk(5, 3).Validate(); err == nil {
		t.Fatal("descending should fail")
	}
	if err := List(nil).Validate(); err != nil {
		t.Fatal("nil list is valid")
	}
}

func TestMakePair(t *testing.T) {
	if MakePair(5, 2) != (Pair{2, 5}) {
		t.Fatal("MakePair should normalize order")
	}
	if !MakePair(2, 5).Itemset().Equal(itemset.New(2, 5)) {
		t.Fatal("Pair.Itemset wrong")
	}
}

func TestBuildPairs(t *testing.T) {
	d := &db.Database{
		NumItems: 6,
		Transactions: []db.Transaction{
			{TID: 0, Items: itemset.New(1, 2, 3)},
			{TID: 1, Items: itemset.New(1, 3)},
			{TID: 2, Items: itemset.New(2, 3)},
			{TID: 3, Items: itemset.New(1, 2, 3)},
		},
	}
	want := map[Pair]bool{{1, 2}: true, {1, 3}: true, {4, 5}: true}
	lists := BuildPairs(d, want)
	if got := lists[Pair{1, 2}]; got.Support() != 2 || got[0] != 0 || got[1] != 3 {
		t.Fatalf("T(1,2) = %v", got)
	}
	if got := lists[Pair{1, 3}]; got.Support() != 3 {
		t.Fatalf("T(1,3) = %v", got)
	}
	if _, present := lists[Pair{2, 3}]; present {
		t.Fatal("unwanted pair should not be built")
	}
	if _, present := lists[Pair{4, 5}]; present {
		t.Fatal("absent pair should have no entry")
	}
	for p, l := range lists {
		if err := l.Validate(); err != nil {
			t.Fatalf("list for %v not sorted: %v", p, err)
		}
	}
}

func TestConcatPartitions(t *testing.T) {
	got := ConcatPartitions([]List{mk(1, 2), nil, mk(5, 9), mk(12)})
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
	if got.Support() != 5 || got[4] != 12 {
		t.Fatalf("Concat = %v", got)
	}
	if len(ConcatPartitions(nil)) != 0 {
		t.Fatal("empty concat should be empty")
	}
}

func TestConcatEqualsGlobalBuild(t *testing.T) {
	// Building pair lists per block partition and concatenating must equal
	// building them on the whole database — the key transformation-phase
	// invariant.
	rng := rand.New(rand.NewSource(3))
	d := randomDB(rng, 200, 12)
	want := map[Pair]bool{}
	for a := itemset.Item(0); a < 12; a++ {
		for b := a + 1; b < 12; b++ {
			want[Pair{a, b}] = true
		}
	}
	global := BuildPairs(d, want)
	for _, np := range []int{1, 2, 3, 5, 8} {
		parts := d.Partition(np)
		perPart := make([]map[Pair]List, np)
		for i, p := range parts {
			perPart[i] = BuildPairs(p, want)
		}
		for pr := range want {
			partials := make([]List, np)
			for i := range parts {
				partials[i] = perPart[i][pr]
			}
			cat := ConcatPartitions(partials)
			if err := cat.Validate(); err != nil {
				t.Fatalf("np=%d pair %v: %v", np, pr, err)
			}
			g := global[pr]
			if len(cat) != len(g) {
				t.Fatalf("np=%d pair %v: concat %d tids, global %d", np, pr, len(cat), len(g))
			}
			for i := range g {
				if cat[i] != g[i] {
					t.Fatalf("np=%d pair %v: content mismatch", np, pr)
				}
			}
		}
	}
}

func TestSizeBytes(t *testing.T) {
	if mk(1, 2, 3).SizeBytes() != 12 {
		t.Fatal("SizeBytes should be 4*len")
	}
}

// Property: Intersect agrees with a set-model oracle and is sorted.
func TestIntersectQuick(t *testing.T) {
	f := func(ra, rb []uint16) bool {
		a := toList(ra)
		b := toList(rb)
		got := Intersect(a, b)
		if got.Validate() != nil {
			return false
		}
		inA := map[itemset.TID]bool{}
		for _, x := range a {
			inA[x] = true
		}
		var want int
		for _, x := range b {
			if inA[x] {
				want++
			}
		}
		if len(got) != want {
			return false
		}
		for _, x := range got {
			if !inA[x] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// Property: for any minsup, short-circuit's ok is exactly |a∩b| >= minsup.
func TestShortCircuitQuick(t *testing.T) {
	f := func(ra, rb []uint16, ms uint8) bool {
		a, b := toList(ra), toList(rb)
		minsup := int(ms % 30)
		full := Intersect(a, b)
		got, _, ok := IntersectShortCircuit(nil, a, b, minsup)
		if ok != (len(full) >= minsup) {
			return false
		}
		if ok && len(got) != len(full) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func toList(raw []uint16) List {
	seen := map[itemset.TID]bool{}
	for _, x := range raw {
		seen[itemset.TID(x%512)] = true
	}
	out := make(List, 0, len(seen))
	for x := range seen {
		out = append(out, x)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func randomList(rng *rand.Rand, maxLen, universe int) List {
	n := rng.Intn(maxLen)
	seen := map[itemset.TID]bool{}
	for i := 0; i < n; i++ {
		seen[itemset.TID(rng.Intn(universe))] = true
	}
	out := make(List, 0, len(seen))
	for x := range seen {
		out = append(out, x)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func randomDB(rng *rand.Rand, numTx, numItems int) *db.Database {
	d := &db.Database{NumItems: numItems}
	for i := 0; i < numTx; i++ {
		n := 1 + rng.Intn(6)
		items := make([]itemset.Item, n)
		for j := range items {
			items[j] = itemset.Item(rng.Intn(numItems))
		}
		d.Transactions = append(d.Transactions, db.Transaction{
			TID: itemset.TID(i), Items: itemset.New(items...),
		})
	}
	return d
}
