package tidlist

import (
	"math/bits"

	"repro/internal/itemset"
)

// Roaring is the compressed tid-set representation: tid space is
// partitioned into 64K-tid chunks keyed by the high 16 bits, and each
// occupied chunk stores its low 16 bits in whichever container shape is
// cheapest for that chunk — a sorted uint16 array, a trimmed word-packed
// bitmap, or run-length pairs. Kernels dispatch per container pair, so a
// set that is dense in one region and scattered in another pays the
// dense word cost only where the words are actually populated; this is
// the containerized layout the many-core and supercomputer FIM studies
// identify as the scalable successor to flat bitsets.
//
// Like List and Bitset, a Roaring is value-mutated only by the kernels
// in this package; everywhere else it is immutable. Aborted
// short-circuit results are unusable partial prefixes, valid only as
// scratch — the same §5.3 contract the other kernels enforce.
type Roaring struct {
	keys  []uint16    // sorted chunk keys (tid >> 16), parallel to ctrs
	ctrs  []container // one per occupied chunk
	count int         // cached total cardinality

	// probe is kernel scratch for array×array intersections (see
	// andArrayArrayProbe): one bit per tid of a 64K chunk, all-zero
	// between kernel calls. It is not part of the set value — clones
	// and the wire encoding ignore it — and lives on the result shell
	// so concurrent workers reusing distinct scratch sets never share
	// it.
	probe []uint64
}

// Container kinds. Construction picks per chunk (see buildContainer);
// kernels produce whatever kind the operation dictates without a
// re-optimization pass, since kernel results are short-lived class
// intermediates.
const (
	ctArray  = uint8(0) // sorted low-16 members in elems
	ctBitmap = uint8(1) // trimmed words covering chunk words [wlo, wlo+len(words))
	ctRun    = uint8(2) // (start, length-1) uint16 pairs in elems, sorted, non-adjacent
)

// chunkBits / chunkSize describe the 64K-tid partition; chunkWords is
// the word span of one full chunk.
const (
	chunkBits  = 16
	chunkSize  = 1 << chunkBits
	chunkWords = chunkSize / wordBits
)

// container holds the low 16 bits of one chunk's members. The elems
// slice doubles as array storage and run-pair storage depending on
// kind; words is bitmap storage trimmed to the populated word window.
type container struct {
	kind  uint8
	card  int32    // cached cardinality of this chunk
	wlo   int32    // bitmap only: chunk word index of words[0]
	elems []uint16 // array members or run pairs
	words []uint64 // bitmap words
}

func chunkKey(t itemset.TID) uint16 { return uint16(uint32(t) >> chunkBits) }
func chunkLow(t itemset.TID) uint16 { return uint16(uint32(t)) }
func chunkTID(key, low uint16) itemset.TID {
	return itemset.TID(uint32(key)<<chunkBits | uint32(low))
}

// NewRoaring packs a sorted tid-list into containers, choosing each
// chunk's shape by the measured run count and occupied word span.
func NewRoaring(l List) *Roaring {
	r := &Roaring{}
	r.SetTIDs(l)
	return r
}

// SetTIDs repacks r to hold exactly the tids of l, reusing container
// storage where capacities allow. Container-kind metrics are published
// once per build, not per chunk, keeping atomics off the inner loop.
func (r *Roaring) SetTIDs(l List) {
	r.keys = r.keys[:0]
	ctrs := r.ctrs
	r.ctrs = r.ctrs[:0]
	r.count = len(l)
	var built [3]int64
	var lows []uint16
	flush := func(key uint16) {
		if len(lows) == 0 {
			return
		}
		var c container
		if len(r.ctrs) < len(ctrs) {
			c = ctrs[len(r.ctrs)] // reuse prior storage
		}
		buildContainer(&c, lows)
		built[c.kind]++
		r.keys = append(r.keys, key)
		r.ctrs = append(r.ctrs, c)
		lows = lows[:0]
	}
	cur := uint16(0)
	for _, t := range l {
		if k := chunkKey(t); k != cur {
			flush(cur)
			cur = k
		}
		lows = append(lows, chunkLow(t))
	}
	flush(cur)
	publishContainerCounts(built)
}

// runCount returns the number of maximal consecutive runs in the sorted
// distinct lows.
func runCount(lows []uint16) int {
	runs := 0
	for i, v := range lows {
		if i == 0 || v != lows[i-1]+1 {
			runs++
		}
	}
	return runs
}

// buildContainer encodes sorted distinct lows into c, reusing c's
// storage. The shape rule is kernel economics, not just encoded size:
// runs when run pairs compress at least 2x against the array (4r <
// min(2c, 8w) bytes), a trimmed bitmap once the occupied word window
// has at least one member per two words (w <= 2c — the point where the
// word kernel overtakes the uint16 merge), and the array otherwise.
func buildContainer(c *container, lows []uint16) {
	card := len(lows)
	lo, hi := int(lows[0]), int(lows[card-1])
	w := hi/wordBits - lo/wordBits + 1
	runs := runCount(lows)
	switch {
	case 4*runs < 2*card && 4*runs < 8*w:
		c.kind, c.card = ctRun, int32(card)
		c.words = c.words[:0]
		c.elems = c.elems[:0]
		start := lows[0]
		for i := 1; i <= card; i++ {
			if i == card || lows[i] != lows[i-1]+1 {
				c.elems = append(c.elems, start, lows[i-1]-start)
				if i < card {
					start = lows[i]
				}
			}
		}
	case w <= 2*card:
		c.kind, c.card, c.wlo = ctBitmap, int32(card), int32(lo/wordBits)
		c.elems = c.elems[:0]
		if cap(c.words) < w {
			c.words = make([]uint64, w)
		} else {
			c.words = c.words[:w]
			clear(c.words)
		}
		for _, v := range lows {
			c.words[int(v)/wordBits-int(c.wlo)] |= 1 << (v % wordBits)
		}
	default:
		c.kind, c.card = ctArray, int32(card)
		c.words = c.words[:0]
		c.elems = append(c.elems[:0], lows...)
	}
}

// Support returns the cardinality (cached; O(1)).
func (r *Roaring) Support() int { return r.count }

// SizeBytes returns the encoded size of the containerized
// representation — the stable payload AppendRoaringBytes produces,
// which is the figure the communication and disk cost models charge.
func (r *Roaring) SizeBytes() int64 {
	if len(r.ctrs) == 0 {
		return 0
	}
	n := int64(roaringPayloadHeader) + roaringDescSize*int64(len(r.ctrs))
	for i := range r.ctrs {
		n += paddedPayloadLen(containerPayloadLen(&r.ctrs[i]))
	}
	return n
}

// Repr identifies the representation.
func (r *Roaring) Repr() Repr { return ReprRoaring }

// AppendTIDs appends the members in increasing order to dst.
func (r *Roaring) AppendTIDs(dst List) List {
	for i, key := range r.keys {
		dst = appendContainerTIDs(dst, key, &r.ctrs[i])
	}
	return dst
}

func appendContainerTIDs(dst List, key uint16, c *container) List {
	switch c.kind {
	case ctArray:
		for _, v := range c.elems {
			dst = append(dst, chunkTID(key, v))
		}
	case ctBitmap:
		for wi, w := range c.words {
			base := chunkTID(key, 0) + itemset.TID((int(c.wlo)+wi)*wordBits)
			for w != 0 {
				dst = append(dst, base+itemset.TID(bits.TrailingZeros64(w)))
				w &= w - 1
			}
		}
	case ctRun:
		for i := 0; i < len(c.elems); i += 2 {
			start, rl := c.elems[i], int(c.elems[i+1])
			for o := 0; o <= rl; o++ {
				dst = append(dst, chunkTID(key, start)+itemset.TID(o))
			}
		}
	}
	return dst
}

// TIDs materializes the set as a sorted tid-list.
func (r *Roaring) TIDs() List { return r.AppendTIDs(make(List, 0, r.count)) }

// Contains reports whether t is a member.
func (r *Roaring) Contains(t itemset.TID) bool {
	i := findKey(r.keys, chunkKey(t))
	if i < 0 {
		return false
	}
	return containerContains(&r.ctrs[i], chunkLow(t))
}

// findKey locates key in the sorted keys slice (binary search), or -1.
func findKey(keys []uint16, key uint16) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if keys[mid] < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(keys) && keys[lo] == key {
		return lo
	}
	return -1
}

func containerContains(c *container, low uint16) bool {
	switch c.kind {
	case ctArray:
		lo, hi := 0, len(c.elems)
		for lo < hi {
			mid := (lo + hi) / 2
			if c.elems[mid] < low {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return lo < len(c.elems) && c.elems[lo] == low
	case ctBitmap:
		wi := int(low)/wordBits - int(c.wlo)
		if wi < 0 || wi >= len(c.words) {
			return false
		}
		return c.words[wi]&(1<<(low%wordBits)) != 0
	default: // ctRun: find the last run starting at or before low
		lo, hi := 0, len(c.elems)/2
		for lo < hi {
			mid := (lo + hi) / 2
			if c.elems[2*mid] <= low {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo == 0 {
			return false
		}
		start, rl := c.elems[2*(lo-1)], c.elems[2*(lo-1)+1]
		return low-start <= rl
	}
}

// containerMin returns the smallest low-16 member of a non-empty
// container.
func containerMin(c *container) uint16 {
	switch c.kind {
	case ctBitmap:
		return uint16(int(c.wlo)*wordBits + bits.TrailingZeros64(c.words[0]))
	default: // array and run both lead with their smallest member
		return c.elems[0]
	}
}

// containerMax returns the largest low-16 member of a non-empty
// container.
func containerMax(c *container) uint16 {
	switch c.kind {
	case ctArray:
		return c.elems[len(c.elems)-1]
	case ctBitmap:
		last := len(c.words) - 1
		return uint16((int(c.wlo)+last)*wordBits + 63 - bits.LeadingZeros64(c.words[last]))
	default: // ctRun
		n := len(c.elems)
		return c.elems[n-2] + c.elems[n-1]
	}
}

// containerHashSum returns the sum of the full TIDs of a container's
// members — the order-independent hash contribution of one chunk,
// computed without materializing anything (runs contribute in closed
// form).
func containerHashSum(key uint16, c *container) int64 {
	base := int64(chunkTID(key, 0))
	switch c.kind {
	case ctArray:
		var s int64
		for _, v := range c.elems {
			s += int64(v)
		}
		return base*int64(len(c.elems)) + s
	case ctBitmap:
		var s int64
		n := 0
		for wi, w := range c.words {
			wbase := int64((int(c.wlo) + wi) * wordBits)
			for w != 0 {
				s += wbase + int64(bits.TrailingZeros64(w))
				w &= w - 1
				n++
			}
		}
		return base*int64(n) + s
	default: // ctRun: run [s, s+l] sums to (l+1)s + l(l+1)/2
		var s int64
		for i := 0; i < len(c.elems); i += 2 {
			st, l := int64(c.elems[i]), int64(c.elems[i+1])
			s += (l+1)*(base+st) + l*(l+1)/2
		}
		return s
	}
}

// roaringEncodedSize computes the stable encoded size l would have under
// ReprRoaring without building the containers: one pass tracking each
// chunk's cardinality, run count and word span, then the same shape rule
// buildContainer applies.
func roaringEncodedSize(l List) int64 {
	if len(l) == 0 {
		return 0
	}
	var n, ctrs int64
	var card, runs int
	var first, prev uint16
	cur := chunkKey(l[0])
	flush := func() {
		w := int(prev)/wordBits - int(first)/wordBits + 1
		var payload int
		switch {
		case 4*runs < 2*card && 4*runs < 8*w:
			payload = 4 * runs
		case w <= 2*card:
			payload = 8 * w
		default:
			payload = 2 * card
		}
		n += paddedPayloadLen(payload)
		ctrs++
	}
	for i, t := range l {
		k, low := chunkKey(t), chunkLow(t)
		if i == 0 || k != cur {
			if i > 0 {
				flush()
			}
			cur, first = k, low
			card, runs = 1, 1
		} else {
			if low != prev+1 {
				runs++
			}
			card++
		}
		prev = low
	}
	flush()
	return int64(roaringPayloadHeader) + roaringDescSize*ctrs + n
}

// Clone returns an independent copy of r.
func (r *Roaring) Clone() *Roaring {
	out := &Roaring{
		keys:  append([]uint16(nil), r.keys...),
		ctrs:  make([]container, len(r.ctrs)),
		count: r.count,
	}
	for i := range r.ctrs {
		c := &r.ctrs[i]
		out.ctrs[i] = container{
			kind:  c.kind,
			card:  c.card,
			wlo:   c.wlo,
			elems: append([]uint16(nil), c.elems...),
			words: append([]uint64(nil), c.words...),
		}
	}
	return out
}

// reuseRoaring returns a result shell reusing dst's container storage
// (dst may be nil). Containers keep their allocated elems/words
// capacity across reuse, which is what keeps the hot kernel loops
// allocation-free once warm.
func reuseRoaring(dst *Roaring) *Roaring {
	if dst == nil {
		dst = &Roaring{}
	}
	dst.keys = dst.keys[:0]
	dst.count = 0
	return dst
}

// nextCtr grows dst.ctrs by one reused container slot and returns it.
func (r *Roaring) nextCtr() *container {
	if len(r.ctrs) < cap(r.ctrs) {
		r.ctrs = r.ctrs[:len(r.ctrs)+1]
	} else {
		r.ctrs = append(r.ctrs, container{})
	}
	return &r.ctrs[len(r.ctrs)-1]
}

// commitCtr accepts the container just filled in by a kernel if it is
// non-empty, recording its chunk key; empty results return the slot to
// the pool so its storage is reused by the next chunk.
func (r *Roaring) commitCtr(key uint16) {
	c := &r.ctrs[len(r.ctrs)-1]
	if c.card == 0 {
		r.ctrs = r.ctrs[:len(r.ctrs)-1]
		return
	}
	r.keys = append(r.keys, key)
	r.count += int(c.card)
}

// probeWords is the length of the probe scratch: one bit per tid of a
// 64K chunk.
const probeWords = chunkSize / wordBits

// probeMergeMin is the combined operand size above which the array
// intersection switches from the two-pointer merge to the probe bitmap;
// below it the merge's smaller footprint wins.
const probeMergeMin = 64

// probeBits returns the lazily allocated, all-zero probe scratch.
func (r *Roaring) probeBits() []uint64 {
	if r.probe == nil {
		r.probe = make([]uint64, probeWords)
	}
	return r.probe
}

// roaringScratch recovers a *Roaring scratch from a previously returned
// Set (or nil, letting the kernel allocate).
func roaringScratch(scratch Set) *Roaring {
	if r, ok := scratch.(*Roaring); ok {
		return r
	}
	return nil
}

// intersectRoaring intersects a and b into dst (reused, may be nil),
// returning the result and the container kernel operations performed:
// uint16 comparisons for array and run pairs, words touched for
// bitmaps. Chunks present on only one side cost nothing — the key merge
// skips them, which is where the containerized layout beats a flat
// bitset on clustered tid distributions.
func intersectRoaring(dst, a, b *Roaring, ks *KernelStats) (*Roaring, int) {
	dst = reuseRoaring(dst)
	dst.ctrs = dst.ctrs[:0]
	ops := 0
	i, j := 0, 0
	for i < len(a.keys) && j < len(b.keys) {
		switch {
		case a.keys[i] < b.keys[j]:
			i++
		case a.keys[i] > b.keys[j]:
			j++
		default:
			ops += dst.ctrAnd(dst.nextCtr(), &a.ctrs[i], &b.ctrs[j], ks)
			dst.commitCtr(a.keys[i])
			i++
			j++
		}
	}
	return dst, ops
}

// intersectRoaringSC is intersectRoaring with the §5.3 short circuit at
// container granularity: after each chunk the result can gain at most
// the remaining cardinality of either operand, and the scan aborts once
// even that bound cannot reach minsup. On abort the returned set is an
// unusable partial prefix retained only for storage reuse, and ok is
// false; ops is reported either way.
func intersectRoaringSC(dst, a, b *Roaring, minsup int, ks *KernelStats) (result *Roaring, ops int, ok bool) {
	if min(a.count, b.count) < minsup {
		return reuseRoaring(dst), 0, false
	}
	dst = reuseRoaring(dst)
	dst.ctrs = dst.ctrs[:0]
	remA, remB := a.count, b.count
	i, j := 0, 0
	for i < len(a.keys) && j < len(b.keys) {
		switch {
		case a.keys[i] < b.keys[j]:
			remA -= int(a.ctrs[i].card)
			i++
		case a.keys[i] > b.keys[j]:
			remB -= int(b.ctrs[j].card)
			j++
		default:
			ops += dst.ctrAnd(dst.nextCtr(), &a.ctrs[i], &b.ctrs[j], ks)
			dst.commitCtr(a.keys[i])
			remA -= int(a.ctrs[i].card)
			remB -= int(b.ctrs[j].card)
			i++
			j++
			// Remaining matches are bounded by the unconsumed
			// cardinality of either operand.
			if dst.count+min(remA, remB) < minsup {
				return dst, ops, false
			}
		}
	}
	return dst, ops, dst.count >= minsup
}

// diffRoaring computes a \ b into dst (reused, may be nil). Chunks of a
// with no matching chunk in b are copied whole.
func diffRoaring(dst, a, b *Roaring, ks *KernelStats) (*Roaring, int) {
	dst = reuseRoaring(dst)
	dst.ctrs = dst.ctrs[:0]
	ops := 0
	j := 0
	for i, key := range a.keys {
		for j < len(b.keys) && b.keys[j] < key {
			j++
		}
		if j < len(b.keys) && b.keys[j] == key {
			ops += ctrAndNot(dst.nextCtr(), &a.ctrs[i], &b.ctrs[j], ks)
		} else {
			ops += ctrCopy(dst.nextCtr(), &a.ctrs[i], ks)
		}
		dst.commitCtr(key)
	}
	return dst, ops
}

// ctrCopy copies src into dst, reusing dst's storage.
func ctrCopy(dst, src *container, ks *KernelStats) int {
	dst.kind, dst.card, dst.wlo = src.kind, src.card, src.wlo
	dst.elems = append(dst.elems[:0], src.elems...)
	if cap(dst.words) < len(src.words) {
		dst.words = make([]uint64, len(src.words))
	} else {
		dst.words = dst.words[:len(src.words)]
	}
	copy(dst.words, src.words)
	if src.kind == ctBitmap {
		ks.roaringWords += int64(len(src.words))
		return len(src.words)
	}
	ks.roaringElemOps += int64(len(src.elems))
	return len(src.elems)
}

// setArray initializes dst as an empty array container ready to append.
func (c *container) setArray() {
	c.kind, c.card, c.wlo = ctArray, 0, 0
	c.elems = c.elems[:0]
	c.words = c.words[:0]
}

// setRun initializes dst as an empty run container ready to append.
func (c *container) setRun() {
	c.kind, c.card, c.wlo = ctRun, 0, 0
	c.elems = c.elems[:0]
	c.words = c.words[:0]
}

// setBitmap initializes dst as a bitmap container spanning chunk words
// [wlo, wlo+n), zeroed when zero is set.
func (c *container) setBitmap(wlo, n int, zero bool) {
	c.kind, c.card, c.wlo = ctBitmap, 0, int32(wlo)
	c.elems = c.elems[:0]
	if cap(c.words) < n {
		c.words = make([]uint64, n)
	} else {
		c.words = c.words[:n]
		if zero {
			clear(c.words)
		}
	}
}

// trimBitmap drops leading and trailing zero words of a bitmap result,
// adjusting wlo, and recomputes nothing else (card is maintained by the
// kernels). An empty bitmap container keeps card 0 and is discarded by
// commitCtr.
func (c *container) trimBitmap() {
	lo := 0
	for lo < len(c.words) && c.words[lo] == 0 {
		lo++
	}
	hi := len(c.words)
	for hi > lo && c.words[hi-1] == 0 {
		hi--
	}
	if lo == hi {
		c.words = c.words[:0]
		c.wlo = 0
		return
	}
	if lo > 0 {
		copy(c.words, c.words[lo:hi])
		c.wlo += int32(lo)
	}
	c.words = c.words[:hi-lo]
}

// appendRun appends the run [start, start+rl] to a run container,
// merging with the previous run when adjacent.
func (c *container) appendRun(start uint16, rl uint16) {
	if n := len(c.elems); n > 0 {
		pStart, pLen := c.elems[n-2], c.elems[n-1]
		if uint32(pStart)+uint32(pLen)+1 == uint32(start) {
			c.elems[n-1] = pLen + rl + 1
			c.card += int32(rl) + 1
			return
		}
	}
	c.elems = append(c.elems, start, rl)
	c.card += int32(rl) + 1
}

// ctrAnd intersects two containers into dst (reusing dst's storage) and
// returns the operations performed, recorded in ks by unit: uint16
// element and run-pair comparisons in roaringArrayOps, words touched in
// roaringWordOps. The receiver is the result shell, supplying the probe
// scratch for large array pairs.
func (r *Roaring) ctrAnd(dst, a, b *container, ks *KernelStats) int {
	// Normalize so the pair switch below needs only the upper triangle.
	if a.kind > b.kind {
		a, b = b, a
	}
	switch {
	case a.kind == ctArray && b.kind == ctArray:
		dst.setArray()
		var ops int
		if len(a.elems)+len(b.elems) >= probeMergeMin {
			ops = andArrayArrayProbe(dst, r.probeBits(), a.elems, b.elems)
		} else {
			ops = andArrayArray(dst, a.elems, b.elems)
		}
		ks.roaringElemOps += int64(ops)
		return ops
	case a.kind == ctArray && b.kind == ctBitmap:
		dst.setArray()
		out := dst.elems
		for _, v := range a.elems {
			wi := int(v)/wordBits - int(b.wlo)
			if wi >= 0 && wi < len(b.words) && b.words[wi]&(1<<(v%wordBits)) != 0 {
				out = append(out, v)
			}
		}
		dst.elems = out
		dst.card = int32(len(out))
		ks.roaringElemOps += int64(len(a.elems))
		return len(a.elems)
	case a.kind == ctArray && b.kind == ctRun:
		dst.setArray()
		ops := andArrayRun(dst, a.elems, b.elems)
		ks.roaringElemOps += int64(ops)
		return ops
	case a.kind == ctBitmap && b.kind == ctBitmap:
		ops := andBitmapBitmap(dst, a, b)
		ks.roaringWords += int64(ops)
		return ops
	case a.kind == ctBitmap && b.kind == ctRun:
		ops := andBitmapRun(dst, a, b)
		ks.roaringWords += int64(ops)
		return ops
	default: // run x run
		dst.setRun()
		ops := andRunRun(dst, a.elems, b.elems)
		ks.roaringElemOps += int64(ops)
		return ops
	}
}

// andArrayArray merges two sorted uint16 arrays into dst. The output
// accumulates in a local so the merge loop keeps the slice header in
// registers instead of reloading it through dst every append — the
// detail that keeps the uint16 merge at parity with the flat sparse
// kernel's int32 loop.
func andArrayArray(dst *container, a, b []uint16) int {
	out := dst.elems
	la, lb := len(a), len(b)
	i, j := 0, 0
	for i < la && j < lb {
		va, vb := a[i], b[j]
		switch {
		case va < vb:
			i++
		case va > vb:
			j++
		default:
			out = append(out, va)
			i++
			j++
		}
	}
	dst.elems = out
	dst.card = int32(len(out))
	return la + lb
}

// andArrayArrayProbe intersects two sorted uint16 arrays through a
// chunk-wide probe bitmap: mark the smaller operand's bits, probe with
// the larger in order (so the output stays sorted), then zero the
// marked words. Every step is an independent load or store, so the CPU
// overlaps them several wide — unlike the two-pointer merge, which
// serializes on its compare-advance dependency. That instruction-level
// parallelism is what lets array containers beat the flat int32 merge
// at very low densities despite the extra pass. The probe slice must be
// all-zero on entry and is restored to all-zero before returning.
func andArrayArrayProbe(dst *container, probe []uint64, a, b []uint16) int {
	if len(a) > len(b) {
		a, b = b, a
	}
	for _, v := range a {
		probe[v>>6] |= 1 << (v & 63)
	}
	out := dst.elems
	for _, v := range b {
		if probe[v>>6]&(1<<(v&63)) != 0 {
			out = append(out, v)
		}
	}
	for _, v := range a {
		probe[v>>6] = 0
	}
	dst.elems = out
	dst.card = int32(len(out))
	return 2*len(a) + len(b)
}

// andArrayRun keeps the array members covered by some run.
func andArrayRun(dst *container, a, runs []uint16) int {
	j := 0
	for _, v := range a {
		for j < len(runs) && uint32(runs[j])+uint32(runs[j+1]) < uint32(v) {
			j += 2
		}
		if j < len(runs) && runs[j] <= v {
			dst.elems = append(dst.elems, v)
		}
	}
	dst.card = int32(len(dst.elems))
	return len(a) + len(runs)/2
}

// andBitmapBitmap ANDs the overlapping word windows. The operand
// windows are pre-sliced to the shared extent so the inner loop is free
// of offset arithmetic and bounds checks — the codegen detail that
// keeps the containerized kernel at parity with (or ahead of) the flat
// bitset word loop.
func andBitmapBitmap(dst, a, b *container) int {
	lo := max(int(a.wlo), int(b.wlo))
	hi := min(int(a.wlo)+len(a.words), int(b.wlo)+len(b.words))
	if hi <= lo {
		dst.setBitmap(0, 0, false)
		return 0
	}
	n := hi - lo
	dst.setBitmap(lo, n, false)
	aw := a.words[lo-int(a.wlo) : lo-int(a.wlo)+n]
	bw := b.words[lo-int(b.wlo) : lo-int(b.wlo)+n]
	dw := dst.words[:n]
	// Four-way unroll with independent popcount chains: the AND and the
	// OnesCount64 of different words have no dependency, so the wider
	// body keeps the popcount unit busy instead of serializing on one
	// accumulator.
	cnt := 0
	i := 0
	for ; i+4 <= n; i += 4 {
		w0 := aw[i] & bw[i]
		w1 := aw[i+1] & bw[i+1]
		w2 := aw[i+2] & bw[i+2]
		w3 := aw[i+3] & bw[i+3]
		dw[i], dw[i+1], dw[i+2], dw[i+3] = w0, w1, w2, w3
		cnt += bits.OnesCount64(w0) + bits.OnesCount64(w1) +
			bits.OnesCount64(w2) + bits.OnesCount64(w3)
	}
	for ; i < n; i++ {
		w := aw[i] & bw[i]
		dw[i] = w
		cnt += bits.OnesCount64(w)
	}
	dst.card = int32(cnt)
	dst.trimBitmap()
	return n
}

// andBitmapRun masks the bitmap down to the words covered by runs.
func andBitmapRun(dst, bm, rc *container) int {
	dst.setBitmap(int(bm.wlo), len(bm.words), true)
	ops := 0
	cnt := 0
	for i := 0; i < len(rc.elems); i += 2 {
		start := int(rc.elems[i])
		end := start + int(rc.elems[i+1]) // inclusive
		wa := max(start/wordBits, int(bm.wlo))
		wb := min(end/wordBits, int(bm.wlo)+len(bm.words)-1)
		for wi := wa; wi <= wb; wi++ {
			mask := ^uint64(0)
			if wi == start/wordBits {
				mask &= ^uint64(0) << (start % wordBits)
			}
			if wi == end/wordBits {
				mask &= ^uint64(0) >> (wordBits - 1 - end%wordBits)
			}
			w := bm.words[wi-int(bm.wlo)] & mask
			di := wi - int(dst.wlo)
			cnt += bits.OnesCount64(w &^ dst.words[di])
			dst.words[di] |= w
			ops++
		}
	}
	dst.card = int32(cnt)
	dst.trimBitmap()
	return ops + len(rc.elems)/2
}

// andRunRun intersects two sorted run lists into a run container.
func andRunRun(dst *container, a, b []uint16) int {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		as, ae := uint32(a[i]), uint32(a[i])+uint32(a[i+1])
		bs, be := uint32(b[j]), uint32(b[j])+uint32(b[j+1])
		lo, hi := max(as, bs), min(ae, be)
		if lo <= hi {
			dst.appendRun(uint16(lo), uint16(hi-lo))
		}
		if ae < be {
			i += 2
		} else {
			j += 2
		}
	}
	return len(a)/2 + len(b)/2
}

// ctrAndNot computes a \ b into dst (reusing dst's storage), recording
// per-unit operations in ks like ctrAnd.
func ctrAndNot(dst, a, b *container, ks *KernelStats) int {
	switch {
	case a.kind == ctArray && b.kind == ctArray:
		dst.setArray()
		i, j := 0, 0
		for i < len(a.elems) {
			switch {
			case j >= len(b.elems) || a.elems[i] < b.elems[j]:
				dst.elems = append(dst.elems, a.elems[i])
				i++
			case a.elems[i] > b.elems[j]:
				j++
			default:
				i++
				j++
			}
		}
		dst.card = int32(len(dst.elems))
		ops := len(a.elems) + len(b.elems)
		ks.roaringElemOps += int64(ops)
		return ops
	case a.kind == ctArray: // \ bitmap or \ run
		dst.setArray()
		for _, v := range a.elems {
			if !containerContains(b, v) {
				dst.elems = append(dst.elems, v)
			}
		}
		dst.card = int32(len(dst.elems))
		ks.roaringElemOps += int64(len(a.elems))
		return len(a.elems)
	case a.kind == ctBitmap && b.kind == ctBitmap:
		n := len(a.words)
		dst.setBitmap(int(a.wlo), n, false)
		cnt := 0
		for i, w := range a.words {
			wi := int(a.wlo) + i - int(b.wlo)
			if wi >= 0 && wi < len(b.words) {
				w &^= b.words[wi]
			}
			dst.words[i] = w
			cnt += bits.OnesCount64(w)
		}
		dst.card = int32(cnt)
		dst.trimBitmap()
		ks.roaringWords += int64(n)
		return n
	case a.kind == ctBitmap: // \ array or \ run
		ops := ctrCopy(dst, a, ks)
		cnt := int(a.card)
		clearBit := func(v uint16) {
			wi := int(v)/wordBits - int(dst.wlo)
			if wi >= 0 && wi < len(dst.words) && dst.words[wi]&(1<<(v%wordBits)) != 0 {
				dst.words[wi] &^= 1 << (v % wordBits)
				cnt--
			}
		}
		if b.kind == ctArray {
			for _, v := range b.elems {
				clearBit(v)
			}
			ops += len(b.elems)
			ks.roaringElemOps += int64(len(b.elems))
		} else {
			for i := 0; i < len(b.elems); i += 2 {
				start, rl := b.elems[i], int(b.elems[i+1])
				for o := 0; o <= rl; o++ {
					clearBit(start + uint16(o))
				}
				ops += rl + 1
			}
			ks.roaringElemOps += int64(int(b.card))
		}
		dst.card = int32(cnt)
		dst.trimBitmap()
		return ops
	default: // run \ anything: walk members, probing b
		dst.setRun()
		var start uint32
		var rl int
		open := false
		flush := func() {
			if open {
				dst.appendRun(uint16(start), uint16(rl))
				open = false
			}
		}
		ops := 0
		for i := 0; i < len(a.elems); i += 2 {
			s, l := uint32(a.elems[i]), int(a.elems[i+1])
			for o := 0; o <= l; o++ {
				v := uint16(s + uint32(o))
				ops++
				if containerContains(b, v) {
					flush()
					continue
				}
				if open && start+uint32(rl)+1 == uint32(v) {
					rl++
				} else {
					flush()
					start, rl, open = uint32(v), 0, true
				}
			}
		}
		flush()
		ks.roaringElemOps += int64(ops)
		return ops
	}
}

// bitsetChunkView wraps the words of bs that fall inside chunk key as a
// bitmap container view. The words alias bs — the view is an operand
// only, never scratch. ok is false when the chunk does not overlap bs.
// Word alignment works out because both the chunk boundary and the
// bitset base are multiples of the word size.
func bitsetChunkView(bs *Bitset, key uint16) (container, bool) {
	chunkStart := chunkTID(key, 0)
	chunkEndW := (int(chunkStart) + chunkSize) / wordBits
	baseW := int(bs.base) / wordBits
	lo := max(int(chunkStart)/wordBits, baseW)
	hi := min(chunkEndW, baseW+len(bs.words))
	if hi <= lo {
		return container{}, false
	}
	return container{
		kind:  ctBitmap,
		card:  int32(bs.count), // upper bound; kernels read lengths, not operand cards
		wlo:   int32(lo - int(chunkStart)/wordBits),
		words: bs.words[lo-baseW : hi-baseW],
	}, true
}

// intersectRoaringBitset intersects a roaring with a bitset chunk by
// chunk, producing a roaring result.
func intersectRoaringBitset(dst *Roaring, a *Roaring, b *Bitset, ks *KernelStats) (*Roaring, int) {
	dst = reuseRoaring(dst)
	dst.ctrs = dst.ctrs[:0]
	ops := 0
	for i, key := range a.keys {
		view, ok := bitsetChunkView(b, key)
		if !ok {
			continue
		}
		ops += dst.ctrAnd(dst.nextCtr(), &a.ctrs[i], &view, ks)
		dst.commitCtr(key)
	}
	return dst, ops
}

// diffRoaringBitset computes roaring \ bitset chunk by chunk.
func diffRoaringBitset(dst *Roaring, a *Roaring, b *Bitset, ks *KernelStats) (*Roaring, int) {
	dst = reuseRoaring(dst)
	dst.ctrs = dst.ctrs[:0]
	ops := 0
	for i, key := range a.keys {
		if view, ok := bitsetChunkView(b, key); ok {
			ops += ctrAndNot(dst.nextCtr(), &a.ctrs[i], &view, ks)
		} else {
			ops += ctrCopy(dst.nextCtr(), &a.ctrs[i], ks)
		}
		dst.commitCtr(key)
	}
	return dst, ops
}

// intersectRoaringBitsetSC is intersectRoaringBitset with the §5.3
// short circuit: the result can gain at most the remaining cardinality
// of the roaring operand (the bitset's per-chunk remainder is unknown
// without a popcount pass, so only a's remainder bounds the scan).
func intersectRoaringBitsetSC(dst *Roaring, a *Roaring, b *Bitset, minsup int, ks *KernelStats) (result Set, ops int, ok bool) {
	if min(a.count, b.count) < minsup {
		return reuseRoaring(dst), 0, false
	}
	dst = reuseRoaring(dst)
	dst.ctrs = dst.ctrs[:0]
	remA := a.count
	for i, key := range a.keys {
		remA -= int(a.ctrs[i].card)
		if view, vok := bitsetChunkView(b, key); vok {
			ops += dst.ctrAnd(dst.nextCtr(), &a.ctrs[i], &view, ks)
			dst.commitCtr(key)
		}
		if dst.count+remA < minsup {
			return dst, ops, false
		}
	}
	return dst, ops, dst.count >= minsup
}

// probeIntersectRoaring intersects a sparse list with a roaring by
// probing each element into the container of its chunk, walking the
// chunk keys in step with the sorted probes; the result is sparse.
func probeIntersectRoaring(scratch Set, sparse List, r *Roaring, ks *KernelStats) (Set, int) {
	ks.mixedIntersections++
	dst := sparseScratch(scratch, len(sparse))
	ci := 0
	for _, t := range sparse {
		k := chunkKey(t)
		for ci < len(r.keys) && r.keys[ci] < k {
			ci++
		}
		if ci < len(r.keys) && r.keys[ci] == k && containerContains(&r.ctrs[ci], chunkLow(t)) {
			dst = append(dst, t)
		}
	}
	ks.sparseOps += int64(len(sparse))
	return dst, len(sparse)
}

// probeIntersectRoaringSC is probeIntersectRoaring with the support
// bound: after m misses the result is bounded by len(sparse) - m.
func probeIntersectRoaringSC(scratch Set, sparse List, r *Roaring, minsup int, ks *KernelStats) (Set, int, bool) {
	ks.mixedIntersections++
	dst := sparseScratch(scratch, len(sparse))
	if min(len(sparse), r.count) < minsup {
		return dst, 0, false
	}
	ops := 0
	ci := 0
	for i, t := range sparse {
		ops++
		k := chunkKey(t)
		for ci < len(r.keys) && r.keys[ci] < k {
			ci++
		}
		if ci < len(r.keys) && r.keys[ci] == k && containerContains(&r.ctrs[ci], chunkLow(t)) {
			dst = append(dst, t)
		}
		if len(dst)+(len(sparse)-1-i) < minsup {
			ks.sparseOps += int64(ops)
			return dst, ops, false
		}
	}
	ks.sparseOps += int64(ops)
	return dst, ops, len(dst) >= minsup
}

// diffRoaringList computes roaring \ list by synthesizing a per-chunk
// array container view over the list's members and running the
// container kernel.
func diffRoaringList(dst *Roaring, a *Roaring, b List, ks *KernelStats) (*Roaring, int) {
	dst = reuseRoaring(dst)
	dst.ctrs = dst.ctrs[:0]
	ops := 0
	var lows []uint16
	j := 0
	for i, key := range a.keys {
		for j < len(b) && chunkKey(b[j]) < key {
			j++
		}
		lows = lows[:0]
		for k := j; k < len(b) && chunkKey(b[k]) == key; k++ {
			lows = append(lows, chunkLow(b[k]))
		}
		if len(lows) == 0 {
			ops += ctrCopy(dst.nextCtr(), &a.ctrs[i], ks)
		} else {
			view := container{kind: ctArray, card: int32(len(lows)), elems: lows}
			ops += ctrAndNot(dst.nextCtr(), &a.ctrs[i], &view, ks)
		}
		dst.commitCtr(key)
	}
	return dst, ops
}

// diffBitsetRoaring computes bitset \ roaring: a copy of the bitset
// with every roaring member cleared.
func diffBitsetRoaring(dst *Bitset, a *Bitset, b *Roaring, ks *KernelStats) (Set, int) {
	ks.mixedIntersections++
	n := len(a.words)
	dst = reuseWords(dst, n)
	dst.base = a.base
	copy(dst.words, a.words)
	count := a.count
	clearTID := func(t itemset.TID) {
		if t < dst.base {
			return
		}
		off := t - dst.base
		wi := int(off / wordBits)
		if wi < len(dst.words) && dst.words[wi]&(1<<(uint(off)%wordBits)) != 0 {
			dst.words[wi] &^= 1 << (uint(off) % wordBits)
			count--
		}
	}
	for i, key := range b.keys {
		c := &b.ctrs[i]
		switch c.kind {
		case ctArray:
			for _, v := range c.elems {
				clearTID(chunkTID(key, v))
			}
		case ctBitmap:
			for wi, w := range c.words {
				base := chunkTID(key, 0) + itemset.TID((int(c.wlo)+wi)*wordBits)
				for w != 0 {
					clearTID(base + itemset.TID(bits.TrailingZeros64(w)))
					w &= w - 1
				}
			}
		case ctRun:
			for ri := 0; ri < len(c.elems); ri += 2 {
				start, rl := c.elems[ri], int(c.elems[ri+1])
				for o := 0; o <= rl; o++ {
					clearTID(chunkTID(key, start) + itemset.TID(o))
				}
			}
		}
	}
	dst.count = count
	dst.trim()
	ops := n + b.count
	ks.sparseOps += int64(b.count)
	ks.wordsTouched += int64(n)
	return dst, ops
}
