package tidlist

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/itemset"
)

// benchTidList returns exactly n distinct sorted tids drawn from
// [0, universe) — fixed cardinality, so density = n/universe is exact.
func benchTidList(rng *rand.Rand, n, universe int) List {
	seen := map[itemset.TID]bool{}
	for len(seen) < n {
		seen[itemset.TID(rng.Intn(universe))] = true
	}
	out := make(List, 0, n)
	for t := range seen {
		out = append(out, t)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// BenchmarkIntersectKernels compares the intersection kernels — sparse
// merge, dense AND+popcount, containerized roaring, and the adaptive
// policy's pick — across densities spanning both sides of
// DenseThreshold (~3.1%). This is the perf baseline behind the
// representation layer: the dense kernel should win clearly on dense
// inputs (>= ~5%) and lose to the merge once the tids spread out, the
// roaring containers should track the per-chunk winner everywhere, and
// adaptive should track the global winner.
//
// The diffset row measures the dEclat difference kernel (DiffSets) on
// the same operands in their adaptively chosen encoding — the cost of
// the first diffset transition at that density, the number the
// break-even rule in DESIGN.md §5 is derived from.
//
// scripts/bench_kernels.go runs this benchmark and writes the committed
// BENCH_kernels.json snapshot.
func BenchmarkIntersectKernels(b *testing.B) {
	const n = 2048
	densities := []struct {
		name     string
		universe int
	}{
		{"50%", n * 2},
		{"12.5%", n * 8},
		{"5%", n * 20},
		{"3.1%", n * 32}, // DenseThreshold: the policy's switch point
		{"1%", n * 100},
		{"0.2%", n * 500},
	}
	for _, d := range densities {
		rng := rand.New(rand.NewSource(7))
		x := benchTidList(rng, n, d.universe)
		y := benchTidList(rng, n, d.universe)
		dx, dy := NewBitset(x), NewBitset(y)
		rx, ry := NewRoaring(x), NewRoaring(y)
		auto := ChooseRepr(ReprAuto, n, d.universe)
		kernels := []struct {
			name string
			a, b Set
			diff bool
		}{
			{"sparse", x, y, false},
			{"bitset", dx, dy, false},
			{"roaring", rx, ry, false},
			{"adaptive", asRepr(x, auto), asRepr(y, auto), false},
			{"diffset", asRepr(x, auto), asRepr(y, auto), true},
		}
		for _, k := range kernels {
			b.Run(fmt.Sprintf("density=%s/kernel=%s", d.name, k.name), func(b *testing.B) {
				var ks KernelStats
				var scratch Set
				b.ReportAllocs()
				b.ResetTimer()
				if k.diff {
					for i := 0; i < b.N; i++ {
						scratch, _ = DiffSets(scratch, k.a, k.b, &ks)
					}
				} else {
					for i := 0; i < b.N; i++ {
						scratch, _ = IntersectSets(scratch, k.a, k.b, &ks)
					}
				}
				b.ReportMetric(float64(scratch.Support()), "tids")
			})
		}
	}
}

// BenchmarkIntersectKernelsSC is the short-circuit variant at a minsup
// just above the expected overlap, the regime section 5.3 optimizes:
// most candidate intersections abort.
func BenchmarkIntersectKernelsSC(b *testing.B) {
	const n = 2048
	for _, d := range []struct {
		name     string
		universe int
	}{
		{"12.5%", n * 8},
		{"1%", n * 100},
	} {
		rng := rand.New(rand.NewSource(7))
		x := benchTidList(rng, n, d.universe)
		y := benchTidList(rng, n, d.universe)
		full := Intersect(x, y)
		minsup := len(full) + 1 // infeasible: every scan must abort
		dx, dy := NewBitset(x), NewBitset(y)
		kernels := []struct {
			name string
			a, b Set
		}{
			{"sparse", x, y},
			{"bitset", dx, dy},
			{"roaring", NewRoaring(x), NewRoaring(y)},
		}
		for _, k := range kernels {
			b.Run(fmt.Sprintf("density=%s/kernel=%s", d.name, k.name), func(b *testing.B) {
				var ks KernelStats
				var scratch Set
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					scratch, _, _ = IntersectSetsSC(scratch, k.a, k.b, minsup, &ks)
				}
			})
		}
	}
}
