package tidlist

import (
	"errors"
	"fmt"
	"math/bits"

	"repro/internal/itemset"
	"repro/internal/obsv"
)

// Repr selects a tid-set representation. The zero value is ReprAuto: the
// adaptive policy picks per equivalence class from density, mirroring how
// the paper localizes all work to a class — the choice, too, needs no
// information beyond the class itself.
type Repr uint8

// The representations.
const (
	// ReprAuto picks sparse or bitset per equivalence class by density
	// (see ChooseRepr).
	ReprAuto Repr = iota
	// ReprSparse is the paper's sorted []TID with the scalar merge loop.
	ReprSparse
	// ReprBitset is the word-packed dense bitset (64 TIDs per word,
	// AND + popcount intersection).
	ReprBitset
	// ReprRoaring is the containerized compressed bitset: 64K-tid
	// chunks holding array, bitmap or run containers, with kernels
	// dispatched per container pair.
	ReprRoaring
)

// ErrInvalidRepresentation reports an unknown representation name.
// ParseRepr errors wrap it, so every layer — Options validation, the
// CLI flag, the daemon's job field — can classify with errors.Is and
// map it to one client-facing failure (HTTP 400 on the daemon).
var ErrInvalidRepresentation = errors.New("tidlist: invalid representation")

// String names the representation as the -repr flag spells it.
func (r Repr) String() string {
	switch r {
	case ReprAuto:
		return "auto"
	case ReprSparse:
		return "sparse"
	case ReprBitset:
		return "bitset"
	case ReprRoaring:
		return "roaring"
	default:
		return fmt.Sprintf("Repr(%d)", uint8(r))
	}
}

// ParseRepr parses a representation name; "" means ReprAuto. Unknown
// names fail with an error wrapping ErrInvalidRepresentation.
func ParseRepr(s string) (Repr, error) {
	switch s {
	case "", "auto":
		return ReprAuto, nil
	case "sparse":
		return ReprSparse, nil
	case "bitset", "dense":
		return ReprBitset, nil
	case "roaring", "compressed":
		return ReprRoaring, nil
	default:
		return 0, fmt.Errorf("%w: %q (want auto, sparse, bitset or roaring)", ErrInvalidRepresentation, s)
	}
}

// DenseThreshold is the density (support / tid-range) at and above which
// ChooseRepr packs a class into bitsets. At 1/32 the dense encoding is
// exactly as large as the sparse one (64 tids per 8-byte word vs 4 bytes
// per tid = break-even at 2 set bits per word); the intersection kernel
// breaks even far earlier, so the byte break-even is the conservative
// switch point.
const DenseThreshold = 1.0 / 32

// RoaringSpanChunks is the tid-span (in 64K chunks) above which the
// adaptive policy prefers the containerized representation over a flat
// bitset for dense classes: within a few chunks the two word kernels
// are equivalent and the flat bitset is simpler, but across a wide span
// the per-chunk trimming and key-merge chunk skipping pay for the
// container dispatch (the committed BENCH_kernels.json rows calibrate
// this).
const RoaringSpanChunks = 4

// ChooseRepr resolves a representation: an explicit request passes
// through, and ReprAuto picks a packed representation when the density
// support/tidRange reaches DenseThreshold — the flat bitset for spans
// within RoaringSpanChunks chunks, the containerized roaring form
// beyond it. support is the (average) cardinality of the tid-sets under
// consideration and tidRange the span of TIDs they cover.
func ChooseRepr(r Repr, support, tidRange int) Repr {
	if r != ReprAuto {
		return r
	}
	if support <= 0 || tidRange <= 0 {
		return ReprSparse
	}
	if float64(support) >= DenseThreshold*float64(tidRange) {
		if tidRange > RoaringSpanChunks*chunkSize {
			return ReprRoaring
		}
		return ReprBitset
	}
	return ReprSparse
}

// Set is a tid-set under some representation. The mining recursion works
// exclusively through this interface plus the kernel dispatch functions
// (IntersectSets, IntersectSetsSC, DiffSets), so every eclat variant is
// representation-agnostic.
type Set interface {
	// Support returns the cardinality of the set.
	Support() int
	// SizeBytes returns the encoded size under this representation, the
	// figure the communication and disk cost models charge.
	SizeBytes() int64
	// Repr identifies the representation.
	Repr() Repr
	// AppendTIDs appends the members in increasing order to dst.
	AppendTIDs(dst List) List
}

// Interface conformance of the sparse representation (see tidlist.go for
// the List methods shared with the pre-abstraction API).
var (
	_ Set = List(nil)
	_ Set = (*Bitset)(nil)
	_ Set = (*Roaring)(nil)
)

// SparseList is the sorted-slice representation under its role name: the
// existing List type is the sparse concrete type of the Set abstraction.
type SparseList = List

// Repr identifies the sparse representation.
func (l List) Repr() Repr { return ReprSparse }

// AppendTIDs appends the members to dst (they are already sorted).
func (l List) AppendTIDs(dst List) List { return append(dst, l...) }

// TIDsOf materializes any set as a sorted tid-list without copying when
// it is already sparse.
func TIDsOf(s Set) List {
	if l, ok := s.(List); ok {
		return l
	}
	return s.AppendTIDs(make(List, 0, s.Support()))
}

// CloneSet returns an independent copy of s under the same
// representation, detaching it from any scratch storage.
func CloneSet(s Set) Set {
	switch v := s.(type) {
	case List:
		return v.Clone()
	case *Bitset:
		return v.Clone()
	case *Roaring:
		return v.Clone()
	default:
		return TIDsOf(s)
	}
}

// Convert re-encodes s under r (ReprAuto converts nothing). A set already
// in the requested representation is returned unchanged; real conversions
// are counted in ks.
func Convert(s Set, r Repr, ks *KernelStats) Set {
	if r == ReprAuto || s.Repr() == r {
		return s
	}
	ks.conversions++
	switch r {
	case ReprBitset:
		return NewBitset(TIDsOf(s))
	case ReprRoaring:
		return NewRoaring(TIDsOf(s))
	default:
		return TIDsOf(s).Clone()
	}
}

// KernelStats accumulates kernel-dispatch counts for one mining run. The
// hot loop updates only this struct; Flush publishes deltas to the
// process metrics registry at class granularity, keeping atomics off the
// per-intersection path (same discipline as eclat's Stats).
type KernelStats struct {
	sparseIntersections  int64 // scalar merge-kernel dispatches
	denseIntersections   int64 // word-kernel dispatches
	mixedIntersections   int64 // sparse-probe-into-packed dispatches
	roaringIntersections int64 // containerized-kernel dispatches
	sparseOps            int64 // element comparisons by the merge kernel
	wordsTouched         int64 // 64-bit words visited by the dense kernel
	roaringElemOps       int64 // uint16 element / run-pair comparisons in containers
	roaringWords         int64 // 64-bit words touched by bitmap containers
	conversions          int64 // representation re-encodings
}

// SparseOps returns the element comparisons performed by sparse (and
// mixed) kernel dispatches — the unit the cluster model charges at
// OpIntersect cost.
func (k *KernelStats) SparseOps() int64 { return k.sparseOps }

// WordsTouched returns the words visited by dense kernel dispatches —
// the unit the cluster model charges at OpBitsetWord cost.
func (k *KernelStats) WordsTouched() int64 { return k.wordsTouched }

// Conversions returns the number of representation re-encodings.
func (k *KernelStats) Conversions() int64 { return k.conversions }

// DenseIntersections returns the number of word-kernel dispatches.
func (k *KernelStats) DenseIntersections() int64 { return k.denseIntersections }

// RoaringIntersections returns the number of containerized-kernel
// dispatches (roaring-roaring and roaring-bitset operand pairs).
func (k *KernelStats) RoaringIntersections() int64 { return k.roaringIntersections }

// RoaringElemOps returns the uint16 element and run-pair comparisons
// performed inside array and run containers — charged per-container at
// the cluster model's element-op cost.
func (k *KernelStats) RoaringElemOps() int64 { return k.roaringElemOps }

// RoaringWords returns the words touched inside bitmap containers —
// charged per-container at the cluster model's word-op cost.
func (k *KernelStats) RoaringWords() int64 { return k.roaringWords }

// Add accumulates other into k.
func (k *KernelStats) Add(other KernelStats) {
	k.sparseIntersections += other.sparseIntersections
	k.denseIntersections += other.denseIntersections
	k.mixedIntersections += other.mixedIntersections
	k.roaringIntersections += other.roaringIntersections
	k.sparseOps += other.sparseOps
	k.wordsTouched += other.wordsTouched
	k.roaringElemOps += other.roaringElemOps
	k.roaringWords += other.roaringWords
	k.conversions += other.conversions
}

// Kernel-dispatch metric names and metrics (see /metricsz).
const (
	mnSparseDispatch  = "tidlist_intersect_sparse_total"
	mnDenseDispatch   = "tidlist_intersect_dense_total"
	mnMixedDispatch   = "tidlist_intersect_mixed_total"
	mnRoaringDispatch = "tidlist_intersect_roaring_total"
	mnSparseOps       = "tidlist_sparse_ops_total"
	mnDenseWords      = "tidlist_dense_words_total"
	mnRoaringElemOps  = "tidlist_roaring_elem_ops_total"
	mnRoaringWords    = "tidlist_roaring_words_total"
	mnConversions     = "tidlist_conversions_total"
)

// Container-construction counter family: how many containers the
// roaring builder has produced, total and per shape. Published per set
// build (see Roaring.SetTIDs), never per chunk.
const (
	mnRoaringContainers       = "tidlist_roaring_containers_total"
	mnRoaringArrayContainers  = "tidlist_roaring_array_containers_total"
	mnRoaringBitmapContainers = "tidlist_roaring_bitmap_containers_total"
	mnRoaringRunContainers    = "tidlist_roaring_run_containers_total"
)

var (
	mSparseDispatch  = obsv.Default.Counter(mnSparseDispatch, "tid-set intersections dispatched to the sparse merge kernel")
	mDenseDispatch   = obsv.Default.Counter(mnDenseDispatch, "tid-set intersections dispatched to the dense word kernel")
	mMixedDispatch   = obsv.Default.Counter(mnMixedDispatch, "tid-set intersections dispatched to the mixed sparse-probe kernel")
	mRoaringDispatch = obsv.Default.Counter(mnRoaringDispatch, "tid-set intersections dispatched to the containerized roaring kernel")
	mSparseOps       = obsv.Default.Counter(mnSparseOps, "element comparisons performed by the sparse merge kernel")
	mDenseWords      = obsv.Default.Counter(mnDenseWords, "64-bit words touched by the dense kernel")
	mRoaringElemOps  = obsv.Default.Counter(mnRoaringElemOps, "uint16 element and run-pair comparisons inside roaring containers")
	mRoaringWords    = obsv.Default.Counter(mnRoaringWords, "64-bit words touched inside roaring bitmap containers")
	mConversions     = obsv.Default.Counter(mnConversions, "tid-set representation re-encodings")

	mRoaringContainers       = obsv.Default.Counter(mnRoaringContainers, "roaring containers built, all shapes")
	mRoaringArrayContainers  = obsv.Default.Counter(mnRoaringArrayContainers, "roaring array containers built")
	mRoaringBitmapContainers = obsv.Default.Counter(mnRoaringBitmapContainers, "roaring bitmap containers built")
	mRoaringRunContainers    = obsv.Default.Counter(mnRoaringRunContainers, "roaring run containers built")
)

// publishContainerCounts flushes one build's per-shape container tally,
// indexed by container kind.
func publishContainerCounts(built [3]int64) {
	total := built[ctArray] + built[ctBitmap] + built[ctRun]
	if total == 0 {
		return
	}
	mRoaringContainers.Add(total)
	mRoaringArrayContainers.Add(built[ctArray])
	mRoaringBitmapContainers.Add(built[ctBitmap])
	mRoaringRunContainers.Add(built[ctRun])
}

// Flush publishes the delta between prev and k to the process metrics
// registry and copies k into prev.
func (k *KernelStats) Flush(prev *KernelStats) {
	mSparseDispatch.Add(k.sparseIntersections - prev.sparseIntersections)
	mDenseDispatch.Add(k.denseIntersections - prev.denseIntersections)
	mMixedDispatch.Add(k.mixedIntersections - prev.mixedIntersections)
	mRoaringDispatch.Add(k.roaringIntersections - prev.roaringIntersections)
	mSparseOps.Add(k.sparseOps - prev.sparseOps)
	mDenseWords.Add(k.wordsTouched - prev.wordsTouched)
	mRoaringElemOps.Add(k.roaringElemOps - prev.roaringElemOps)
	mRoaringWords.Add(k.roaringWords - prev.roaringWords)
	mConversions.Add(k.conversions - prev.conversions)
	*prev = *k
}

// IntersectSets intersects a and b through the representation-dispatched
// kernel, reusing scratch (a Set previously returned by a kernel in this
// package, or nil) for the result's storage. It returns the result and
// the kernel operations performed (element comparisons for the sparse
// and mixed kernels, words touched for the dense kernel).
func IntersectSets(scratch Set, a, b Set, ks *KernelStats) (Set, int) {
	switch x := a.(type) {
	case List:
		switch y := b.(type) {
		case List:
			ks.sparseIntersections++
			out := IntersectInto(sparseScratch(scratch, min(len(x), len(y))), x, y)
			ops := len(x) + len(y)
			ks.sparseOps += int64(ops)
			return out, ops
		case *Bitset:
			return probeIntersect(scratch, x, y, ks)
		case *Roaring:
			return probeIntersectRoaring(scratch, x, y, ks)
		}
	case *Bitset:
		switch y := b.(type) {
		case List:
			return probeIntersect(scratch, y, x, ks)
		case *Bitset:
			ks.denseIntersections++
			out, words := intersectBitset(bitsetScratch(scratch), x, y)
			ks.wordsTouched += int64(words)
			return out, words
		case *Roaring:
			ks.roaringIntersections++
			return intersectRoaringBitset(roaringScratch(scratch), y, x, ks)
		}
	case *Roaring:
		switch y := b.(type) {
		case List:
			return probeIntersectRoaring(scratch, y, x, ks)
		case *Bitset:
			ks.roaringIntersections++
			return intersectRoaringBitset(roaringScratch(scratch), x, y, ks)
		case *Roaring:
			ks.roaringIntersections++
			return intersectRoaring(roaringScratch(scratch), x, y, ks)
		}
	}
	return intersectGeneric(a, b, ks)
}

// IntersectSetsSC is IntersectSets with the minimum-support short circuit
// (section 5.3). When ok is false the returned set is an unusable partial
// prefix retained only so callers can reuse its storage — the same
// contract as IntersectShortCircuit, now enforced across every kernel.
// ops is reported even on a mid-scan abort, so work accounting stays
// exact for short-circuited intersections.
func IntersectSetsSC(scratch Set, a, b Set, minsup int, ks *KernelStats) (result Set, ops int, ok bool) {
	switch x := a.(type) {
	case List:
		switch y := b.(type) {
		case List:
			ks.sparseIntersections++
			out, ops, ok := IntersectShortCircuit(sparseScratch(scratch, min(len(x), len(y))), x, y, minsup)
			ks.sparseOps += int64(ops)
			return out, ops, ok
		case *Bitset:
			return probeIntersectSC(scratch, x, y, minsup, ks)
		case *Roaring:
			return probeIntersectRoaringSC(scratch, x, y, minsup, ks)
		}
	case *Bitset:
		switch y := b.(type) {
		case List:
			return probeIntersectSC(scratch, y, x, minsup, ks)
		case *Bitset:
			ks.denseIntersections++
			out, words, ok := intersectBitsetSC(bitsetScratch(scratch), x, y, minsup)
			ks.wordsTouched += int64(words)
			return out, words, ok
		case *Roaring:
			ks.roaringIntersections++
			return intersectRoaringBitsetSC(roaringScratch(scratch), y, x, minsup, ks)
		}
	case *Roaring:
		switch y := b.(type) {
		case List:
			return probeIntersectRoaringSC(scratch, y, x, minsup, ks)
		case *Bitset:
			ks.roaringIntersections++
			return intersectRoaringBitsetSC(roaringScratch(scratch), x, y, minsup, ks)
		case *Roaring:
			ks.roaringIntersections++
			return intersectRoaringSC(roaringScratch(scratch), x, y, minsup, ks)
		}
	}
	out, ops := intersectGeneric(a, b, ks)
	return out, ops, out.Support() >= minsup
}

// DiffSets computes a \ b through the representation-dispatched kernel
// (AND NOT for dense operands), reusing scratch like IntersectSets.
func DiffSets(scratch Set, a, b Set, ks *KernelStats) (Set, int) {
	switch x := a.(type) {
	case List:
		switch y := b.(type) {
		case List:
			ks.sparseIntersections++
			out := DiffInto(sparseScratch(scratch, len(x)), x, y)
			ops := len(x) + len(y)
			ks.sparseOps += int64(ops)
			return out, ops
		case *Bitset:
			// Keep the elements of x that y does not contain: one O(1)
			// probe per element.
			ks.mixedIntersections++
			dst := sparseScratch(scratch, len(x))
			for _, t := range x {
				if !y.Contains(t) {
					dst = append(dst, t)
				}
			}
			ks.sparseOps += int64(len(x))
			return dst, len(x)
		case *Roaring:
			// Keep the elements of x outside y, walking y's chunks in
			// step with the sorted probes.
			ks.mixedIntersections++
			dst := sparseScratch(scratch, len(x))
			ci := 0
			for _, t := range x {
				k := chunkKey(t)
				for ci < len(y.keys) && y.keys[ci] < k {
					ci++
				}
				if ci >= len(y.keys) || y.keys[ci] != k || !containerContains(&y.ctrs[ci], chunkLow(t)) {
					dst = append(dst, t)
				}
			}
			ks.sparseOps += int64(len(x))
			return dst, len(x)
		}
	case *Bitset:
		switch y := b.(type) {
		case *Bitset:
			ks.denseIntersections++
			out, words := diffBitset(bitsetScratch(scratch), x, y)
			ks.wordsTouched += int64(words)
			return out, words
		case List:
			// Clear each element of y out of a copy of x.
			ks.mixedIntersections++
			dst := bitsetScratch(scratch)
			n := len(x.words)
			dst = reuseWords(dst, n)
			dst.base = x.base
			copy(dst.words, x.words)
			dst.count = x.count
			for _, t := range y {
				if dst.Contains(t) {
					off := t - dst.base
					dst.words[off/wordBits] &^= 1 << (uint(off) % wordBits)
					dst.count--
				}
			}
			dst.trim()
			ks.sparseOps += int64(len(y))
			return dst, len(y)
		case *Roaring:
			return diffBitsetRoaring(bitsetScratch(scratch), x, y, ks)
		}
	case *Roaring:
		switch y := b.(type) {
		case *Roaring:
			ks.roaringIntersections++
			return diffRoaring(roaringScratch(scratch), x, y, ks)
		case *Bitset:
			ks.roaringIntersections++
			return diffRoaringBitset(roaringScratch(scratch), x, y, ks)
		case List:
			ks.roaringIntersections++
			return diffRoaringList(roaringScratch(scratch), x, y, ks)
		}
	}
	a2, b2 := TIDsOf(a), TIDsOf(b)
	ks.sparseIntersections++
	ops := len(a2) + len(b2)
	ks.sparseOps += int64(ops)
	return DiffInto(sparseScratch(scratch, len(a2)), a2, b2), ops
}

// probeIntersect intersects a sparse list with a bitset by probing each
// element — O(len(sparse)) with O(1) membership tests; the result is
// sparse (it is no larger than the sparse operand).
func probeIntersect(scratch Set, sparse List, dense *Bitset, ks *KernelStats) (Set, int) {
	ks.mixedIntersections++
	dst := sparseScratch(scratch, len(sparse))
	for _, t := range sparse {
		if dense.Contains(t) {
			dst = append(dst, t)
		}
	}
	ks.sparseOps += int64(len(sparse))
	return dst, len(sparse)
}

// probeIntersectSC is probeIntersect with the support bound: after m
// misses the result is bounded by len(sparse) - m.
func probeIntersectSC(scratch Set, sparse List, dense *Bitset, minsup int, ks *KernelStats) (Set, int, bool) {
	ks.mixedIntersections++
	dst := sparseScratch(scratch, len(sparse))
	if min(len(sparse), dense.Support()) < minsup {
		return dst, 0, false
	}
	ops := 0
	for i, t := range sparse {
		ops++
		if dense.Contains(t) {
			dst = append(dst, t)
		}
		if len(dst)+(len(sparse)-1-i) < minsup {
			ks.sparseOps += int64(ops)
			return dst, ops, false
		}
	}
	ks.sparseOps += int64(ops)
	return dst, ops, len(dst) >= minsup
}

// intersectGeneric handles Set implementations outside this package by
// materializing both sides (slow path; none exist in-repo).
func intersectGeneric(a, b Set, ks *KernelStats) (Set, int) {
	x, y := TIDsOf(a), TIDsOf(b)
	ks.sparseIntersections++
	ops := len(x) + len(y)
	ks.sparseOps += int64(ops)
	return Intersect(x, y), ops
}

// sparseScratch recovers a List scratch buffer from a previously returned
// Set (or allocates one with the given capacity hint).
func sparseScratch(scratch Set, capHint int) List {
	if l, ok := scratch.(List); ok {
		return l[:0]
	}
	return make(List, 0, capHint)
}

// bitsetScratch recovers a *Bitset scratch from a previously returned Set
// (or nil, letting the kernel allocate).
func bitsetScratch(scratch Set) *Bitset {
	if b, ok := scratch.(*Bitset); ok {
		return b
	}
	return nil
}

// Bounds returns the smallest and largest TID of s; ok is false when the
// set is empty. The adaptive policy uses it to measure a class's tid span
// without materializing anything.
func Bounds(s Set) (lo, hi itemset.TID, ok bool) {
	switch v := s.(type) {
	case List:
		if len(v) == 0 {
			return 0, 0, false
		}
		return v[0], v[len(v)-1], true
	case *Bitset:
		if len(v.words) == 0 {
			return 0, 0, false
		}
		// trim keeps the first and last words nonzero.
		lo = v.base + itemset.TID(bits.TrailingZeros64(v.words[0]))
		last := len(v.words) - 1
		hi = v.base + itemset.TID(last*wordBits+63-bits.LeadingZeros64(v.words[last]))
		return lo, hi, true
	case *Roaring:
		if len(v.keys) == 0 {
			return 0, 0, false
		}
		last := len(v.keys) - 1
		lo = chunkTID(v.keys[0], containerMin(&v.ctrs[0]))
		hi = chunkTID(v.keys[last], containerMax(&v.ctrs[last]))
		return lo, hi, true
	default:
		l := TIDsOf(s)
		if len(l) == 0 {
			return 0, 0, false
		}
		return l[0], l[len(l)-1], true
	}
}

// HashTIDs returns the order-independent tid-sum hash used by the closed
// set accumulators, computed without materializing dense sets.
func HashTIDs(s Set) int64 {
	switch v := s.(type) {
	case List:
		var h int64
		for _, t := range v {
			h += int64(t)
		}
		return h
	case *Bitset:
		var h int64
		for wi, w := range v.words {
			base := v.base + itemset.TID(wi*wordBits)
			for w != 0 {
				h += int64(base) + int64(bits.TrailingZeros64(w))
				w &= w - 1
			}
		}
		return h
	case *Roaring:
		var h int64
		for i, key := range v.keys {
			h += containerHashSum(key, &v.ctrs[i])
		}
		return h
	default:
		var h int64
		for _, t := range TIDsOf(s) {
			h += int64(t)
		}
		return h
	}
}

// EncodedSize returns the wire/disk size of a tid-list under r, and the
// concrete representation chosen (ReprAuto picks the smaller encoding —
// the transformation phase ships each list in whichever encoding is
// cheaper, exactly like the true byte size the cluster model charges).
func EncodedSize(l List, r Repr) (int64, Repr) {
	sparse := l.SizeBytes()
	switch r {
	case ReprSparse:
		return sparse, ReprSparse
	case ReprBitset:
		return denseSizeBytes(l), ReprBitset
	case ReprRoaring:
		return roaringEncodedSize(l), ReprRoaring
	}
	best, repr := sparse, ReprSparse
	if dense := denseSizeBytes(l); dense < best {
		best, repr = dense, ReprBitset
	}
	if roaring := roaringEncodedSize(l); roaring < best {
		best, repr = roaring, ReprRoaring
	}
	return best, repr
}

// denseSizeBytes is the Bitset SizeBytes l would have, computed without
// building it.
func denseSizeBytes(l List) int64 {
	if len(l) == 0 {
		return 0
	}
	words := int64(l[len(l)-1]/wordBits-l[0]/wordBits) + 1
	return 8 + 8*words
}
