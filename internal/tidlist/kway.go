package tidlist

import "sort"

// IntersectKSetsSC intersects k sets under the minimum-support short
// circuit — the k-way path for long prefixes. A candidate deep in the
// lattice is the intersection of many member lists at once (MaxEclat's
// class-collapse lookahead is the canonical site: the class's top
// itemset's tid-set is the intersection of every member's), and folding
// them through one call beats a hand-rolled chain two ways: the operands
// are folded smallest-support-first, so the accumulator shrinks as early
// as possible and the §5.3 bound can abort the chain before the large
// lists are ever touched, and the two intermediate buffers are rotated
// internally, so the whole fold allocates at most two results no matter
// how long the prefix is.
//
// ops is the total kernel operations across all folds, folds the number
// of pairwise kernel dispatches actually performed (< len(sets)-1 when
// the bound aborts early). When ok is false the returned set is an
// unusable partial retained only for storage reuse — the same contract
// as IntersectSetsSC. Operands are never modified; a single operand is
// returned as-is. Zero operands yield (nil, 0, 0, false).
func IntersectKSetsSC(sets []Set, minsup int, ks *KernelStats) (result Set, ops, folds int, ok bool) {
	switch len(sets) {
	case 0:
		return nil, 0, 0, false
	case 1:
		return sets[0], 0, 0, sets[0].Support() >= minsup
	}
	// Fold order: ascending support, indirected so the caller's slice
	// stays untouched.
	order := make([]int, len(sets))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		sa, sb := sets[order[a]].Support(), sets[order[b]].Support()
		if sa != sb {
			return sa < sb
		}
		return order[a] < order[b]
	})

	acc := sets[order[0]]
	var spare Set // result buffer from two folds ago, free for reuse
	first := true
	for _, oi := range order[1:] {
		out, n, o := IntersectSetsSC(spare, acc, sets[oi], minsup, ks)
		ops += n
		folds++
		if first {
			// acc was a caller operand; nothing to recycle yet.
			spare, first = nil, false
		} else {
			spare = acc
		}
		acc = out
		if !o {
			return acc, ops, folds, false
		}
	}
	return acc, ops, folds, true
}
