package tidlist

import (
	"encoding/binary"
	"fmt"
	"math/bits"
	"unsafe"

	"repro/internal/itemset"
)

// Stable on-disk serialization of the two tid-set representations, plus
// zero-copy decoding for memory-mapped storage (internal/store). The
// formats are little-endian and versioned by the store's bundle header;
// they are the "stable serialization" contract the persistent vertical
// dataset store pins with round-trip fuzzing.
//
// Sparse payload:  4 bytes per member — the TIDs as uint32, increasing.
// Bitset payload:  8-byte header (base uint32, popcount uint32) followed
//	                by the words as uint64; the word count is implied by
//	                the payload length.
//
// On little-endian hosts both decoders return views that alias the input
// buffer directly (a List over the tid bytes, a Bitset over the word
// bytes) when the buffer is suitably aligned — the mmap fast path. The
// views follow the package's immutability contract: like every Set
// handed to the kernels as an operand they are never written through,
// and they must never be passed in scratch position (kernels write
// scratch storage; a mapped view is read-only memory).

// nativeLittleEndian reports whether the host stores integers
// little-endian, the precondition for aliasing file bytes as []TID or
// []uint64 without a byte-order pass.
var nativeLittleEndian = func() bool {
	x := uint16(1)
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// bitsetPayloadHeader is the fixed prefix of the dense payload: base TID
// and cached popcount, each uint32. Words follow at offset 8, so a
// payload placed on an 8-byte boundary keeps its words 8-byte aligned.
const bitsetPayloadHeader = 8

// AppendListBytes appends the stable sparse encoding of l to dst.
func AppendListBytes(dst []byte, l List) []byte {
	for _, t := range l {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(t))
	}
	return dst
}

// ListFromBytes decodes a sparse payload. On a little-endian host with a
// 4-byte-aligned buffer the returned List aliases b without copying;
// otherwise it is an independent copy. The aliasing view is immutable by
// contract (see the package comment above).
func ListFromBytes(b []byte) (List, error) {
	if len(b)%4 != 0 {
		return nil, fmt.Errorf("tidlist: sparse payload length %d is not a multiple of 4", len(b))
	}
	n := len(b) / 4
	if n == 0 {
		return nil, nil
	}
	if nativeLittleEndian && uintptr(unsafe.Pointer(&b[0]))%4 == 0 {
		return unsafe.Slice((*itemset.TID)(unsafe.Pointer(&b[0])), n), nil
	}
	out := make(List, n)
	for i := range out {
		out[i] = itemset.TID(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return out, nil
}

// AppendBitsetBytes appends the stable dense encoding of bs to dst.
func AppendBitsetBytes(dst []byte, bs *Bitset) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(bs.base))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(bs.count))
	for _, w := range bs.words {
		dst = binary.LittleEndian.AppendUint64(dst, w)
	}
	return dst
}

// BitsetFromBytes decodes a dense payload. On a little-endian host with
// an 8-byte-aligned buffer the returned Bitset's words alias b without
// copying; otherwise they are an independent copy. The aliasing view is
// immutable by contract (see the package comment above).
func BitsetFromBytes(b []byte) (*Bitset, error) {
	if len(b) < bitsetPayloadHeader || (len(b)-bitsetPayloadHeader)%8 != 0 {
		return nil, fmt.Errorf("tidlist: dense payload length %d is not 8+8k", len(b))
	}
	base := itemset.TID(binary.LittleEndian.Uint32(b))
	if base%wordBits != 0 {
		return nil, fmt.Errorf("tidlist: dense payload base %d is not word-aligned", base)
	}
	count := int(binary.LittleEndian.Uint32(b[4:]))
	wb := b[bitsetPayloadHeader:]
	n := len(wb) / 8
	bs := &Bitset{base: base, count: count}
	if n == 0 {
		if count != 0 {
			return nil, fmt.Errorf("tidlist: dense payload count %d with no words", count)
		}
		return bs, nil
	}
	if nativeLittleEndian && uintptr(unsafe.Pointer(&wb[0]))%8 == 0 {
		bs.words = unsafe.Slice((*uint64)(unsafe.Pointer(&wb[0])), n)
	} else {
		bs.words = make([]uint64, n)
		for i := range bs.words {
			bs.words[i] = binary.LittleEndian.Uint64(wb[8*i:])
		}
	}
	if err := bs.validateEncoded(); err != nil {
		return nil, err
	}
	return bs, nil
}

// validateEncoded checks the invariants the kernels rely on — trimmed
// word span and a correct cached popcount — so a decoded view is safe to
// hand to every kernel without a defensive copy.
func (b *Bitset) validateEncoded() error {
	if n := len(b.words); n > 0 && (b.words[0] == 0 || b.words[n-1] == 0) {
		return fmt.Errorf("tidlist: dense payload has untrimmed zero boundary words")
	}
	pop := 0
	for _, w := range b.words {
		pop += bits.OnesCount64(w)
	}
	if pop != b.count {
		return fmt.Errorf("tidlist: dense payload popcount %d does not match stored count %d", pop, b.count)
	}
	return nil
}

// EncodedLen returns the exact payload size AppendListBytes/
// AppendBitsetBytes would produce for s, the figure the store sizes
// bundle records with.
func EncodedLen(s Set) int {
	switch v := s.(type) {
	case List:
		return 4 * len(v)
	case *Bitset:
		return bitsetPayloadHeader + 8*len(v.words)
	default:
		return 4 * s.Support()
	}
}
