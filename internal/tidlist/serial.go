package tidlist

import (
	"encoding/binary"
	"fmt"
	"math/bits"
	"unsafe"

	"repro/internal/itemset"
)

// Stable on-disk serialization of the two tid-set representations, plus
// zero-copy decoding for memory-mapped storage (internal/store). The
// formats are little-endian and versioned by the store's bundle header;
// they are the "stable serialization" contract the persistent vertical
// dataset store pins with round-trip fuzzing.
//
// Sparse payload:  4 bytes per member — the TIDs as uint32, increasing.
// Bitset payload:  8-byte header (base uint32, popcount uint32) followed
//	                by the words as uint64; the word count is implied by
//	                the payload length.
//
// On little-endian hosts both decoders return views that alias the input
// buffer directly (a List over the tid bytes, a Bitset over the word
// bytes) when the buffer is suitably aligned — the mmap fast path. The
// views follow the package's immutability contract: like every Set
// handed to the kernels as an operand they are never written through,
// and they must never be passed in scratch position (kernels write
// scratch storage; a mapped view is read-only memory).

// nativeLittleEndian reports whether the host stores integers
// little-endian, the precondition for aliasing file bytes as []TID or
// []uint64 without a byte-order pass.
var nativeLittleEndian = func() bool {
	x := uint16(1)
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// bitsetPayloadHeader is the fixed prefix of the dense payload: base TID
// and cached popcount, each uint32. Words follow at offset 8, so a
// payload placed on an 8-byte boundary keeps its words 8-byte aligned.
const bitsetPayloadHeader = 8

// AppendListBytes appends the stable sparse encoding of l to dst.
func AppendListBytes(dst []byte, l List) []byte {
	for _, t := range l {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(t))
	}
	return dst
}

// ListFromBytes decodes a sparse payload. On a little-endian host with a
// 4-byte-aligned buffer the returned List aliases b without copying;
// otherwise it is an independent copy. The aliasing view is immutable by
// contract (see the package comment above).
func ListFromBytes(b []byte) (List, error) {
	if len(b)%4 != 0 {
		return nil, fmt.Errorf("tidlist: sparse payload length %d is not a multiple of 4", len(b))
	}
	n := len(b) / 4
	if n == 0 {
		return nil, nil
	}
	if nativeLittleEndian && uintptr(unsafe.Pointer(&b[0]))%4 == 0 {
		return unsafe.Slice((*itemset.TID)(unsafe.Pointer(&b[0])), n), nil
	}
	out := make(List, n)
	for i := range out {
		out[i] = itemset.TID(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return out, nil
}

// AppendBitsetBytes appends the stable dense encoding of bs to dst.
func AppendBitsetBytes(dst []byte, bs *Bitset) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(bs.base))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(bs.count))
	for _, w := range bs.words {
		dst = binary.LittleEndian.AppendUint64(dst, w)
	}
	return dst
}

// BitsetFromBytes decodes a dense payload. On a little-endian host with
// an 8-byte-aligned buffer the returned Bitset's words alias b without
// copying; otherwise they are an independent copy. The aliasing view is
// immutable by contract (see the package comment above).
func BitsetFromBytes(b []byte) (*Bitset, error) {
	if len(b) < bitsetPayloadHeader || (len(b)-bitsetPayloadHeader)%8 != 0 {
		return nil, fmt.Errorf("tidlist: dense payload length %d is not 8+8k", len(b))
	}
	base := itemset.TID(binary.LittleEndian.Uint32(b))
	if base%wordBits != 0 {
		return nil, fmt.Errorf("tidlist: dense payload base %d is not word-aligned", base)
	}
	count := int(binary.LittleEndian.Uint32(b[4:]))
	wb := b[bitsetPayloadHeader:]
	n := len(wb) / 8
	bs := &Bitset{base: base, count: count}
	if n == 0 {
		if count != 0 {
			return nil, fmt.Errorf("tidlist: dense payload count %d with no words", count)
		}
		return bs, nil
	}
	if nativeLittleEndian && uintptr(unsafe.Pointer(&wb[0]))%8 == 0 {
		bs.words = unsafe.Slice((*uint64)(unsafe.Pointer(&wb[0])), n)
	} else {
		bs.words = make([]uint64, n)
		for i := range bs.words {
			bs.words[i] = binary.LittleEndian.Uint64(wb[8*i:])
		}
	}
	if err := bs.validateEncoded(); err != nil {
		return nil, err
	}
	return bs, nil
}

// validateEncoded checks the invariants the kernels rely on — trimmed
// word span and a correct cached popcount — so a decoded view is safe to
// hand to every kernel without a defensive copy.
func (b *Bitset) validateEncoded() error {
	if n := len(b.words); n > 0 && (b.words[0] == 0 || b.words[n-1] == 0) {
		return fmt.Errorf("tidlist: dense payload has untrimmed zero boundary words")
	}
	pop := 0
	for _, w := range b.words {
		pop += bits.OnesCount64(w)
	}
	if pop != b.count {
		return fmt.Errorf("tidlist: dense payload popcount %d does not match stored count %d", pop, b.count)
	}
	return nil
}

// Roaring payload layout (little-endian, offsets relative to the payload
// start, which the store places on an 8-byte boundary):
//
//	header      8 bytes   count uint32, nContainers uint32
//	descriptors 8 each    key uint16 | kind uint8 | 0 pad | aux uint32
//	payloads              in key order, each padded to 8 bytes
//
// aux is the per-kind shape word: the cardinality for arrays, the run
// count for runs, and wlo<<16 | wordCount for bitmaps (the bitmap
// cardinality is recomputed by popcount during decode, which doubles as
// validation). Payload bytes are uint16 members for arrays, uint16
// (start, length-1) pairs for runs, uint64 words for bitmaps. Because
// the header and every descriptor and padded payload are 8-byte
// multiples, an 8-aligned buffer keeps every bitmap's words 8-aligned
// and every array 2-aligned — the zero-copy mmap precondition.
const (
	roaringPayloadHeader = 8
	roaringDescSize      = int64(8)
)

// containerPayloadLen returns the unpadded payload byte length of c.
func containerPayloadLen(c *container) int {
	if c.kind == ctBitmap {
		return 8 * len(c.words)
	}
	return 2 * len(c.elems) // array members or run pairs
}

// paddedPayloadLen rounds a payload length up to the 8-byte boundary
// that keeps the next payload aligned.
func paddedPayloadLen(n int) int64 {
	return int64(n+7) &^ 7
}

// AppendRoaringBytes appends the stable containerized encoding of r to
// dst. An empty set encodes to zero bytes, matching the other
// representations.
func AppendRoaringBytes(dst []byte, r *Roaring) []byte {
	if len(r.ctrs) == 0 {
		return dst
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(r.count))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(r.ctrs)))
	for i := range r.ctrs {
		c := &r.ctrs[i]
		dst = binary.LittleEndian.AppendUint16(dst, r.keys[i])
		dst = append(dst, c.kind, 0)
		var aux uint32
		switch c.kind {
		case ctArray:
			aux = uint32(c.card)
		case ctRun:
			aux = uint32(len(c.elems) / 2)
		default: // ctBitmap
			aux = uint32(c.wlo)<<16 | uint32(len(c.words))
		}
		dst = binary.LittleEndian.AppendUint32(dst, aux)
	}
	for i := range r.ctrs {
		c := &r.ctrs[i]
		n := containerPayloadLen(c)
		if c.kind == ctBitmap {
			for _, w := range c.words {
				dst = binary.LittleEndian.AppendUint64(dst, w)
			}
		} else {
			for _, v := range c.elems {
				dst = binary.LittleEndian.AppendUint16(dst, v)
			}
		}
		for pad := int(paddedPayloadLen(n)) - n; pad > 0; pad-- {
			dst = append(dst, 0)
		}
	}
	return dst
}

// RoaringFromBytes decodes a containerized payload, validating every
// invariant the kernels rely on: sorted keys, sorted strict arrays,
// sorted non-adjacent runs, trimmed bitmaps with matching popcounts, and
// a total cardinality matching the header. On a little-endian host with
// an 8-byte-aligned buffer the container storage aliases b without
// copying; the views are immutable by contract (see the package comment
// above).
func RoaringFromBytes(b []byte) (*Roaring, error) {
	if len(b) == 0 {
		return &Roaring{}, nil
	}
	if len(b) < roaringPayloadHeader {
		return nil, fmt.Errorf("tidlist: roaring payload length %d is shorter than the header", len(b))
	}
	count := int(binary.LittleEndian.Uint32(b))
	nc := int(binary.LittleEndian.Uint32(b[4:]))
	if nc == 0 || nc > 1<<16 {
		return nil, fmt.Errorf("tidlist: roaring payload container count %d out of range", nc)
	}
	descEnd := roaringPayloadHeader + 8*nc
	if len(b) < descEnd {
		return nil, fmt.Errorf("tidlist: roaring payload truncated in descriptors")
	}
	alias := nativeLittleEndian && uintptr(unsafe.Pointer(&b[0]))%8 == 0
	r := &Roaring{
		keys: make([]uint16, nc),
		ctrs: make([]container, nc),
	}
	off := descEnd
	total := 0
	for i := 0; i < nc; i++ {
		d := b[roaringPayloadHeader+8*i:]
		key := binary.LittleEndian.Uint16(d)
		kind := d[2]
		aux := binary.LittleEndian.Uint32(d[4:])
		if i > 0 && key <= r.keys[i-1] {
			return nil, fmt.Errorf("tidlist: roaring payload keys not strictly increasing at container %d", i)
		}
		r.keys[i] = key
		c := &r.ctrs[i]
		c.kind = kind
		var n int // unpadded payload length
		switch kind {
		case ctArray:
			if aux == 0 || aux > chunkSize {
				return nil, fmt.Errorf("tidlist: roaring array container %d cardinality %d out of range", i, aux)
			}
			c.card = int32(aux)
			n = 2 * int(aux)
		case ctRun:
			if aux == 0 || aux > chunkSize/2 {
				return nil, fmt.Errorf("tidlist: roaring run container %d run count %d out of range", i, aux)
			}
			n = 4 * int(aux)
		case ctBitmap:
			wlo, nw := int(aux>>16), int(aux&0xffff)
			if nw == 0 || wlo+nw > chunkWords {
				return nil, fmt.Errorf("tidlist: roaring bitmap container %d window [%d,%d) out of range", i, wlo, wlo+nw)
			}
			c.wlo = int32(wlo)
			n = 8 * nw
		default:
			return nil, fmt.Errorf("tidlist: roaring container %d has unknown kind %d", i, kind)
		}
		end := off + int(paddedPayloadLen(n))
		if end > len(b) {
			return nil, fmt.Errorf("tidlist: roaring payload truncated in container %d", i)
		}
		p := b[off : off+n]
		if kind == ctBitmap {
			nw := n / 8
			if alias {
				c.words = unsafe.Slice((*uint64)(unsafe.Pointer(&p[0])), nw)
			} else {
				c.words = make([]uint64, nw)
				for wi := range c.words {
					c.words[wi] = binary.LittleEndian.Uint64(p[8*wi:])
				}
			}
			if c.words[0] == 0 || c.words[nw-1] == 0 {
				return nil, fmt.Errorf("tidlist: roaring bitmap container %d has untrimmed zero boundary words", i)
			}
			pop := 0
			for _, w := range c.words {
				pop += bits.OnesCount64(w)
			}
			c.card = int32(pop)
		} else {
			ne := n / 2
			if alias {
				c.elems = unsafe.Slice((*uint16)(unsafe.Pointer(&p[0])), ne)
			} else {
				c.elems = make([]uint16, ne)
				for ei := range c.elems {
					c.elems[ei] = binary.LittleEndian.Uint16(p[2*ei:])
				}
			}
			if err := validateContainerElems(c, i); err != nil {
				return nil, err
			}
		}
		total += int(c.card)
		off = end
	}
	if off != len(b) {
		return nil, fmt.Errorf("tidlist: roaring payload has %d trailing bytes", len(b)-off)
	}
	if total != count {
		return nil, fmt.Errorf("tidlist: roaring payload cardinality %d does not match stored count %d", total, count)
	}
	r.count = count
	return r, nil
}

// validateContainerElems checks the element invariants of a decoded
// array or run container and fills in the run cardinality.
func validateContainerElems(c *container, i int) error {
	if c.kind == ctArray {
		for ei := 1; ei < len(c.elems); ei++ {
			if c.elems[ei] <= c.elems[ei-1] {
				return fmt.Errorf("tidlist: roaring array container %d not strictly increasing", i)
			}
		}
		return nil
	}
	// ctRun: (start, length-1) pairs, sorted, non-adjacent, in-chunk.
	card := int32(0)
	prevEnd := -2
	for ei := 0; ei < len(c.elems); ei += 2 {
		start, rl := int(c.elems[ei]), int(c.elems[ei+1])
		if start <= prevEnd+1 {
			return fmt.Errorf("tidlist: roaring run container %d has overlapping or adjacent runs", i)
		}
		end := start + rl
		if end >= chunkSize {
			return fmt.Errorf("tidlist: roaring run container %d run [%d,%d] exceeds the chunk", i, start, end)
		}
		prevEnd = end
		card += int32(rl) + 1
	}
	c.card = card
	return nil
}

// EncodedLen returns the exact payload size AppendListBytes/
// AppendBitsetBytes/AppendRoaringBytes would produce for s, the figure
// the store sizes bundle records with.
func EncodedLen(s Set) int {
	switch v := s.(type) {
	case List:
		return 4 * len(v)
	case *Bitset:
		return bitsetPayloadHeader + 8*len(v.words)
	case *Roaring:
		return int(v.SizeBytes())
	default:
		return 4 * s.Support()
	}
}
