package tidlist

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/itemset"
)

// asRepr encodes l under r (ReprAuto is treated as sparse here; the
// adaptive policy is exercised separately through ChooseRepr).
func asRepr(l List, r Repr) Set {
	switch r {
	case ReprBitset:
		return NewBitset(l)
	case ReprRoaring:
		return NewRoaring(l)
	default:
		return l
	}
}

// reprCombos enumerates the nine operand pairings every kernel dispatch
// must handle: each of sparse/bitset/roaring against each other.
var reprCombos = [][2]Repr{
	{ReprSparse, ReprSparse},
	{ReprSparse, ReprBitset},
	{ReprSparse, ReprRoaring},
	{ReprBitset, ReprSparse},
	{ReprBitset, ReprBitset},
	{ReprBitset, ReprRoaring},
	{ReprRoaring, ReprSparse},
	{ReprRoaring, ReprBitset},
	{ReprRoaring, ReprRoaring},
}

func TestParseRepr(t *testing.T) {
	cases := []struct {
		in   string
		want Repr
	}{
		{"", ReprAuto}, {"auto", ReprAuto},
		{"sparse", ReprSparse},
		{"bitset", ReprBitset}, {"dense", ReprBitset},
		{"roaring", ReprRoaring}, {"compressed", ReprRoaring},
	}
	for _, c := range cases {
		got, err := ParseRepr(c.in)
		if err != nil || got != c.want {
			t.Fatalf("ParseRepr(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
	}
	if _, err := ParseRepr("hashtable"); err == nil {
		t.Fatal("ParseRepr should reject unknown names")
	} else if !errors.Is(err, ErrInvalidRepresentation) {
		t.Fatalf("ParseRepr error %v should wrap ErrInvalidRepresentation", err)
	}
	for _, r := range []Repr{ReprAuto, ReprSparse, ReprBitset, ReprRoaring} {
		back, err := ParseRepr(r.String())
		if err != nil || back != r {
			t.Fatalf("String/Parse round trip broken for %v", r)
		}
	}
}

func TestChooseRepr(t *testing.T) {
	// Explicit requests pass through regardless of density.
	if ChooseRepr(ReprSparse, 1000, 1000) != ReprSparse {
		t.Fatal("explicit sparse overridden")
	}
	if ChooseRepr(ReprBitset, 1, 1<<20) != ReprBitset {
		t.Fatal("explicit bitset overridden")
	}
	if ChooseRepr(ReprRoaring, 1, 100) != ReprRoaring {
		t.Fatal("explicit roaring overridden")
	}
	// Auto: dense at and above the threshold, sparse below.
	if ChooseRepr(ReprAuto, 32, 1024) != ReprBitset { // density exactly 1/32
		t.Fatal("auto should pick bitset at the break-even density")
	}
	if ChooseRepr(ReprAuto, 31, 1024) != ReprSparse {
		t.Fatal("auto should pick sparse just below the threshold")
	}
	// Auto: dense classes spanning more than RoaringSpanChunks chunks go
	// containerized; the same density within the span stays flat.
	wide := RoaringSpanChunks*chunkSize + 1
	if ChooseRepr(ReprAuto, wide/16, wide) != ReprRoaring {
		t.Fatal("auto should pick roaring for a dense wide-span class")
	}
	if ChooseRepr(ReprAuto, chunkSize/16, chunkSize) != ReprBitset {
		t.Fatal("auto should keep the flat bitset within the span limit")
	}
	// Degenerate inputs stay sparse.
	if ChooseRepr(ReprAuto, 0, 100) != ReprSparse || ChooseRepr(ReprAuto, 5, 0) != ReprSparse {
		t.Fatal("degenerate density should fall back to sparse")
	}
}

func TestIntersectSetsAllCombos(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 200; trial++ {
		a := randomList(rng, 60, 300)
		b := randomList(rng, 60, 300)
		want := Intersect(a, b)
		for _, combo := range reprCombos {
			var ks KernelStats
			got, ops := IntersectSets(nil, asRepr(a, combo[0]), asRepr(b, combo[1]), &ks)
			if !equalTIDs(TIDsOf(got), want) {
				t.Fatalf("combo %v/%v: IntersectSets = %v, want %v", combo[0], combo[1], TIDsOf(got), want)
			}
			if got.Support() != len(want) {
				t.Fatalf("combo %v/%v: Support = %d, want %d", combo[0], combo[1], got.Support(), len(want))
			}
			if ops < 0 {
				t.Fatalf("combo %v/%v: negative ops %d", combo[0], combo[1], ops)
			}
			assertOpsCounted(t, &ks, combo, int64(ops))
		}
	}
}

func TestDiffSetsAllCombos(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 200; trial++ {
		a := randomList(rng, 60, 300)
		b := randomList(rng, 60, 300)
		want := Diff(a, b)
		for _, combo := range reprCombos {
			var ks KernelStats
			got, ops := DiffSets(nil, asRepr(a, combo[0]), asRepr(b, combo[1]), &ks)
			if !equalTIDs(TIDsOf(got), want) {
				t.Fatalf("combo %v/%v: DiffSets = %v, want %v", combo[0], combo[1], TIDsOf(got), want)
			}
			if got.Support() != len(want) {
				t.Fatalf("combo %v/%v: Support = %d, want %d", combo[0], combo[1], got.Support(), len(want))
			}
			if ops < 0 {
				t.Fatalf("combo %v/%v: negative ops %d", combo[0], combo[1], ops)
			}
		}
	}
}

// TestIntersectSetsSCContract pins the short-circuit contract for every
// kernel: ok is exactly |a∩b| >= minsup, the content is the true
// intersection when ok, and the operations performed before a mid-scan
// abort are still reported — both in the return value and in the
// KernelStats field the cluster cost model charges from.
func TestIntersectSetsSCContract(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for trial := 0; trial < 300; trial++ {
		a := randomList(rng, 60, 300)
		b := randomList(rng, 60, 300)
		full := Intersect(a, b)
		for _, minsup := range []int{0, 1, len(full), len(full) + 1, 15, len(a) + len(b)} {
			for _, combo := range reprCombos {
				var ks KernelStats
				got, ops, ok := IntersectSetsSC(nil, asRepr(a, combo[0]), asRepr(b, combo[1]), minsup, &ks)
				if ok != (len(full) >= minsup) {
					t.Fatalf("combo %v/%v minsup %d: ok=%v but |∩|=%d", combo[0], combo[1], minsup, ok, len(full))
				}
				if ok && !equalTIDs(TIDsOf(got), full) {
					t.Fatalf("combo %v/%v minsup %d: content mismatch", combo[0], combo[1], minsup)
				}
				if ops < 0 {
					t.Fatalf("combo %v/%v: negative ops", combo[0], combo[1])
				}
				// Aborts must report the work already done: the returned
				// ops and the stats field must agree even when ok=false.
				assertOpsCounted(t, &ks, combo, int64(ops))
			}
		}
	}
}

// TestAbortedResultReusableAsScratch pins the storage-reuse half of the
// partial-prefix contract: the only valid use of an ok=false result is
// as scratch for a later kernel call, and that later call must be
// correct. This is exactly what the mining recursions do after a
// short-circuited candidate.
func TestAbortedResultReusableAsScratch(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 100; trial++ {
		a := randomList(rng, 60, 300)
		b := randomList(rng, 60, 300)
		c := randomList(rng, 60, 300)
		for _, combo := range reprCombos {
			var ks KernelStats
			// Force an abort with an unreachable minsup.
			aborted, _, ok := IntersectSetsSC(nil, asRepr(a, combo[0]), asRepr(b, combo[1]), len(a)+len(b)+1, &ks)
			if ok {
				t.Fatal("minsup above both supports must abort")
			}
			// Reuse the partial prefix as scratch for a fresh intersection.
			want := Intersect(a, c)
			got, _ := IntersectSets(aborted, asRepr(a, combo[0]), asRepr(c, combo[1]), &ks)
			if !equalTIDs(TIDsOf(got), want) {
				t.Fatalf("combo %v/%v: reusing aborted result as scratch corrupted the next intersection", combo[0], combo[1])
			}
		}
	}
}

func TestCloneSetDetachesFromScratch(t *testing.T) {
	a := mk(1, 2, 3, 4, 5)
	b := mk(2, 4, 5)
	for _, combo := range reprCombos {
		var ks KernelStats
		res, _ := IntersectSets(nil, asRepr(a, combo[0]), asRepr(b, combo[1]), &ks)
		kept := CloneSet(res)
		want := TIDsOf(kept).Clone()
		// Clobber the scratch storage with an unrelated intersection.
		IntersectSets(res, asRepr(mk(100, 200, 300), combo[0]), asRepr(mk(100, 300), combo[1]), &ks)
		if !equalTIDs(TIDsOf(kept), want) {
			t.Fatalf("combo %v/%v: CloneSet result changed after scratch reuse", combo[0], combo[1])
		}
	}
}

func TestConvertRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	for trial := 0; trial < 100; trial++ {
		l := randomList(rng, 80, 5000)
		var ks KernelStats
		dense := Convert(l, ReprBitset, &ks)
		if dense.Repr() != ReprBitset {
			t.Fatal("Convert to bitset returned wrong representation")
		}
		back := Convert(dense, ReprSparse, &ks)
		if !equalTIDs(TIDsOf(back), l) {
			t.Fatalf("round trip lost tids: %v -> %v", l, TIDsOf(back))
		}
		if ks.Conversions() != 2 {
			t.Fatalf("expected 2 conversions counted, got %d", ks.Conversions())
		}
		// Converting to the same representation (or to auto) is a no-op
		// and must not count.
		if Convert(l, ReprSparse, &ks); ks.Conversions() != 2 {
			t.Fatal("same-representation Convert should not count")
		}
		if Convert(dense, ReprAuto, &ks); ks.Conversions() != 2 {
			t.Fatal("Convert to auto should not count")
		}
	}
}

func TestBounds(t *testing.T) {
	for _, r := range []Repr{ReprSparse, ReprBitset, ReprRoaring} {
		if _, _, ok := Bounds(asRepr(nil, r)); ok {
			t.Fatalf("%v: empty set has bounds", r)
		}
		lo, hi, ok := Bounds(asRepr(mk(7, 100, 9000), r))
		if !ok || lo != 7 || hi != 9000 {
			t.Fatalf("%v: Bounds = %d..%d ok=%v, want 7..9000", r, lo, hi, ok)
		}
		// Chunk-spanning set: bounds come from different containers.
		lo, hi, ok = Bounds(asRepr(mk(65535, 65536, 200000), r))
		if !ok || lo != 65535 || hi != 200000 {
			t.Fatalf("%v: Bounds = %d..%d ok=%v, want 65535..200000", r, lo, hi, ok)
		}
	}
}

func TestHashTIDsAgreesAcrossRepresentations(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 100; trial++ {
		l := randomList(rng, 80, 5000)
		var wantSum int64
		for _, tid := range l {
			wantSum += int64(tid)
		}
		if got := HashTIDs(l); got != wantSum {
			t.Fatalf("sparse HashTIDs = %d, want %d", got, wantSum)
		}
		if got := HashTIDs(NewBitset(l)); got != wantSum {
			t.Fatalf("dense HashTIDs = %d, want %d", got, wantSum)
		}
		if got := HashTIDs(NewRoaring(l)); got != wantSum {
			t.Fatalf("roaring HashTIDs = %d, want %d", got, wantSum)
		}
	}
}

func TestEncodedSize(t *testing.T) {
	l := mk(0, 1, 2, 63) // one word, 4 tids
	if n, r := EncodedSize(l, ReprSparse); n != 16 || r != ReprSparse {
		t.Fatalf("sparse EncodedSize = %d/%v", n, r)
	}
	if n, r := EncodedSize(l, ReprBitset); n != 16 || r != ReprBitset {
		t.Fatalf("dense EncodedSize = %d/%v (want 8 header + 1 word)", n, r)
	}
	// Auto ships the cheaper encoding: 4 tids in one word ties at 16
	// bytes (dense is not strictly smaller, so sparse wins the tie); 5
	// tids in one word favors dense.
	if n, r := EncodedSize(l, ReprAuto); n != 16 || r != ReprSparse {
		t.Fatalf("auto EncodedSize = %d/%v, want sparse tie-break", n, r)
	}
	l5 := mk(0, 1, 2, 3, 63)
	if n, r := EncodedSize(l5, ReprAuto); n != 16 || r != ReprBitset {
		t.Fatalf("auto EncodedSize(5 tids/word) = %d/%v, want 16/bitset", n, r)
	}
	// Widely spread tids: dense pays per covered word, sparse per tid.
	spread := mk(0, 1_000_000)
	if n, r := EncodedSize(spread, ReprAuto); n != 8 || r != ReprSparse {
		t.Fatalf("auto EncodedSize(spread) = %d/%v, want 8/sparse", n, r)
	}
	if n, _ := EncodedSize(nil, ReprAuto); n != 0 {
		t.Fatalf("empty EncodedSize = %d", n)
	}
	// EncodedSize must agree with the sizes the real encodings report,
	// and auto must return the minimum of the three.
	rng := rand.New(rand.NewSource(67))
	for trial := 0; trial < 50; trial++ {
		l := randomList(rng, 60, 2000)
		if n, _ := EncodedSize(l, ReprBitset); n != NewBitset(l).SizeBytes() {
			t.Fatalf("EncodedSize dense %d != Bitset.SizeBytes %d for %v", n, NewBitset(l).SizeBytes(), l)
		}
		nr, _ := EncodedSize(l, ReprRoaring)
		if got := NewRoaring(l).SizeBytes(); nr != got {
			t.Fatalf("EncodedSize roaring %d != Roaring.SizeBytes %d for %v", nr, got, l)
		}
		na, _ := EncodedSize(l, ReprAuto)
		ns, _ := EncodedSize(l, ReprSparse)
		nb, _ := EncodedSize(l, ReprBitset)
		if na != min(ns, nb, nr) {
			t.Fatalf("auto EncodedSize %d is not the minimum of %d/%d/%d", na, ns, nb, nr)
		}
	}
	// A clustered list far apart compresses best under roaring: runs
	// cover each cluster, and untouched chunks cost nothing.
	var clustered List
	for c := 0; c < 4; c++ {
		base := itemset.TID(c * 10 * chunkSize)
		for o := 0; o < 3000; o++ {
			clustered = append(clustered, base+itemset.TID(o))
		}
	}
	if n, r := EncodedSize(clustered, ReprAuto); r != ReprRoaring {
		t.Fatalf("auto EncodedSize(clustered) picked %v (%d bytes), want roaring", r, n)
	}
}

func TestBitsetFarFromZeroStaysCompact(t *testing.T) {
	// A class whose tids cluster near 10^9 must not allocate words from
	// zero: the word-aligned base anchors the span.
	l := mk(1_000_000_000, 1_000_000_005, 1_000_000_063, 1_000_000_100)
	b := NewBitset(l)
	if len(b.words) > 2 {
		t.Fatalf("bitset spans %d words, want <= 2", len(b.words))
	}
	if b.base%wordBits != 0 {
		t.Fatalf("base %d not word-aligned", b.base)
	}
	if !equalTIDs(b.TIDs(), l) {
		t.Fatalf("round trip lost tids: %v", b.TIDs())
	}
}

func TestBitsetContains(t *testing.T) {
	b := NewBitset(mk(64, 70, 200))
	for _, tid := range []itemset.TID{64, 70, 200} {
		if !b.Contains(tid) {
			t.Fatalf("Contains(%d) = false", tid)
		}
	}
	for _, tid := range []itemset.TID{0, 63, 65, 199, 201, 100000} {
		if b.Contains(tid) {
			t.Fatalf("Contains(%d) = true", tid)
		}
	}
}

func TestKernelStatsAddAndFlush(t *testing.T) {
	var a, b KernelStats
	a.sparseOps, a.wordsTouched, a.conversions = 3, 5, 1
	b.sparseOps, b.denseIntersections = 2, 7
	a.Add(b)
	if a.SparseOps() != 5 || a.WordsTouched() != 5 || a.Conversions() != 1 || a.DenseIntersections() != 7 {
		t.Fatalf("Add wrong: %+v", a)
	}
	var prev KernelStats
	a.Flush(&prev)
	if prev != a {
		t.Fatal("Flush must copy the current totals into prev")
	}
	// A second flush with no new work publishes zero deltas and leaves
	// prev unchanged.
	a.Flush(&prev)
	if prev != a {
		t.Fatal("idempotent Flush changed prev")
	}
}

// assertOpsCounted checks that the kernel charged its ops to the stats
// fields the cluster cost model reads for that operand pairing: element
// comparisons for sparse/mixed dispatches, words for dense ones, and
// the per-container element/word split for containerized dispatches —
// and that the total charged always equals the returned ops.
func assertOpsCounted(t *testing.T, ks *KernelStats, combo [2]Repr, ops int64) {
	t.Helper()
	total := ks.SparseOps() + ks.WordsTouched() + ks.RoaringElemOps() + ks.RoaringWords()
	if total != ops {
		t.Fatalf("combo %v/%v: charged %d ops across stats fields, returned ops=%d", combo[0], combo[1], total, ops)
	}
	switch {
	case combo[0] == ReprSparse || combo[1] == ReprSparse:
		// A sparse operand routes to the merge or probe kernel.
		if ks.SparseOps() != ops {
			t.Fatalf("combo %v/%v: SparseOps=%d, returned ops=%d", combo[0], combo[1], ks.SparseOps(), ops)
		}
	case combo[0] == ReprBitset && combo[1] == ReprBitset:
		if ks.WordsTouched() != ops {
			t.Fatalf("combo %v/%v: WordsTouched=%d, returned ops=%d", combo[0], combo[1], ks.WordsTouched(), ops)
		}
	default:
		// A roaring operand (vs roaring or bitset) runs container kernels.
		if ks.RoaringElemOps()+ks.RoaringWords() != ops {
			t.Fatalf("combo %v/%v: roaring ops %d+%d, returned ops=%d", combo[0], combo[1], ks.RoaringElemOps(), ks.RoaringWords(), ops)
		}
	}
}

func equalTIDs(a, b List) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
