package tidlist

import (
	"repro/internal/itemset"
)

// arenaChunkElems is the element count of a freshly allocated arena
// chunk (larger single requests get a dedicated chunk of exactly the
// requested size).
const arenaChunkElems = 1 << 14

// chunkPos addresses one allocation point inside a chunk stack.
type chunkPos struct {
	chunk, off int
}

// chunkStack is a stack allocator over fixed chunks: carve slices off the
// current chunk, remember a position with mark, and free everything
// carved since with release. Chunks are retained across releases, so a
// steady-state mining recursion stops allocating entirely. Carved slices
// are full-capacity (three-index) sub-slices, so appending beyond a
// carve's length can never bleed into a neighbour.
type chunkStack[T any] struct {
	chunks [][]T
	ci     int // current chunk index
	off    int // next free element in chunks[ci]
}

// alloc carves a slice of length n (capacity exactly n). The contents
// are stale from earlier carves — callers overwrite every element.
func (s *chunkStack[T]) alloc(n int) []T {
	for {
		if s.ci < len(s.chunks) {
			c := s.chunks[s.ci]
			if s.off+n <= len(c) {
				out := c[s.off : s.off+n : s.off+n]
				s.off += n
				return out
			}
			// Current chunk can't fit the carve: move on. The wasted tail
			// is reclaimed by the release that unwinds past this point.
			s.ci++
			s.off = 0
			continue
		}
		size := arenaChunkElems
		if n > size {
			size = n
		}
		s.chunks = append(s.chunks, make([]T, size))
		s.ci = len(s.chunks) - 1
		s.off = 0
	}
}

func (s *chunkStack[T]) mark() chunkPos { return chunkPos{s.ci, s.off} }

func (s *chunkStack[T]) release(p chunkPos) { s.ci, s.off = p.chunk, p.off }

// Arena is a stack allocator for tid-set clones. The Eclat recursion's
// member tid-sets live exactly as long as the sub-class they belong to —
// a strict LIFO lifetime — so the mining loop brackets each sub-class
// with Mark/Release and clones survivors with CloneSetInto, reducing the
// per-itemset allocation cost of the recursion to a pointer bump.
//
// A nil *Arena is valid and falls back to plain heap clones, so callers
// can thread one arena through shared code without branching.
type Arena struct {
	tids  chunkStack[itemset.TID]
	words chunkStack[uint64]
	sets  chunkStack[Bitset]
}

// ArenaMark is a point-in-time position of an Arena (see Mark/Release).
type ArenaMark struct {
	tids, words, sets chunkPos
}

// Mark records the current allocation point.
func (a *Arena) Mark() ArenaMark {
	if a == nil {
		return ArenaMark{}
	}
	return ArenaMark{tids: a.tids.mark(), words: a.words.mark(), sets: a.sets.mark()}
}

// Release frees every allocation made since m was taken. The freed
// storage is reused by subsequent allocations; slices carved after m must
// no longer be referenced.
func (a *Arena) Release(m ArenaMark) {
	if a == nil {
		return
	}
	a.tids.release(m.tids)
	a.words.release(m.words)
	a.sets.release(m.sets)
}

// CloneSetInto copies s into arena-backed storage under the same
// representation, like CloneSet but without per-clone heap allocations.
// The clone is valid until the enclosing Mark is Released. A nil arena
// degrades to CloneSet.
func (a *Arena) CloneSetInto(s Set) Set {
	if a == nil {
		return CloneSet(s)
	}
	switch v := s.(type) {
	case List:
		dst := a.tids.alloc(len(v))
		copy(dst, v)
		return List(dst)
	case *Bitset:
		b := &a.sets.alloc(1)[0]
		b.base = v.base
		b.count = v.count
		b.words = a.words.alloc(len(v.words))
		copy(b.words, v.words)
		return b
	default:
		return CloneSet(s)
	}
}
