package tidlist

import (
	"math/rand"
	"testing"

	"repro/internal/itemset"
)

// seqList returns [start, start+n) as a List.
func seqList(start itemset.TID, n int) List {
	l := make(List, n)
	for i := range l {
		l[i] = start + itemset.TID(i)
	}
	return l
}

func TestRoaringContainerShapes(t *testing.T) {
	// One long run: the run container wins.
	r := NewRoaring(seqList(10, 5000))
	if len(r.ctrs) != 1 || r.ctrs[0].kind != ctRun {
		t.Fatalf("5000-tid run encoded as kind %d in %d containers, want one run container", r.ctrs[0].kind, len(r.ctrs))
	}
	// Every other tid over a word-dense span: bitmap.
	var dense List
	for i := 0; i < 4096; i += 2 {
		dense = append(dense, itemset.TID(i))
	}
	r = NewRoaring(dense)
	if len(r.ctrs) != 1 || r.ctrs[0].kind != ctBitmap {
		t.Fatalf("alternating tids encoded as kind %d, want bitmap", r.ctrs[0].kind)
	}
	// Widely scattered tids within a chunk: array.
	var scattered List
	for i := 0; i < 100; i++ {
		scattered = append(scattered, itemset.TID(i*601))
	}
	r = NewRoaring(scattered)
	if len(r.ctrs) != 1 || r.ctrs[0].kind != ctArray {
		t.Fatalf("scattered tids encoded as kind %d, want array", r.ctrs[0].kind)
	}
	// The bitmap window is trimmed: members far from the chunk start
	// must not pay for leading words.
	r = NewRoaring(seqList(60000, 64).Clone())
	if c := &r.ctrs[0]; c.kind == ctBitmap && len(c.words) > 2 {
		t.Fatalf("trimmed bitmap spans %d words, want <= 2", len(c.words))
	}
}

func TestRoaringChunkBoundaries(t *testing.T) {
	// Members on both sides of a chunk boundary land in distinct
	// containers and survive every accessor.
	l := mk(chunkSize-2, chunkSize-1, chunkSize, chunkSize+1, 3*chunkSize-1, 3*chunkSize)
	r := NewRoaring(l)
	if len(r.keys) != 4 {
		t.Fatalf("boundary list occupies %d chunks, want 4 (%v)", len(r.keys), r.keys)
	}
	if !equalTIDs(r.TIDs(), l) {
		t.Fatalf("round trip: %v -> %v", l, r.TIDs())
	}
	for _, tid := range l {
		if !r.Contains(tid) {
			t.Fatalf("Contains(%d) = false", tid)
		}
	}
	for _, tid := range []itemset.TID{0, chunkSize - 3, chunkSize + 2, 2 * chunkSize, 3*chunkSize + 1} {
		if r.Contains(tid) {
			t.Fatalf("Contains(%d) = true", tid)
		}
	}
	// A run crossing the boundary splits into per-chunk runs and still
	// intersects correctly with a straddling operand.
	a := seqList(chunkSize-100, 200)
	b := seqList(chunkSize-50, 100)
	var ks KernelStats
	got, _ := IntersectSets(nil, NewRoaring(a), NewRoaring(b), &ks)
	if !equalTIDs(TIDsOf(got), Intersect(a, b)) {
		t.Fatalf("boundary-straddling intersection wrong: %v", TIDsOf(got))
	}
}

func TestRoaringSetTIDsReuse(t *testing.T) {
	// Repacking a Roaring must fully replace its contents, whatever the
	// prior shapes were, while reusing storage.
	rng := rand.New(rand.NewSource(71))
	r := &Roaring{}
	for trial := 0; trial < 200; trial++ {
		var l List
		switch trial % 3 {
		case 0:
			l = randomList(rng, 300, 10*chunkSize)
		case 1:
			l = seqList(itemset.TID(rng.Intn(3*chunkSize)), 1+rng.Intn(5000))
		default:
			l = randomList(rng, 50, 500)
		}
		r.SetTIDs(l)
		if !equalTIDs(r.TIDs(), l) {
			t.Fatalf("trial %d: SetTIDs reuse lost tids", trial)
		}
		if r.Support() != len(l) {
			t.Fatalf("trial %d: Support %d, want %d", trial, r.Support(), len(l))
		}
	}
	r.SetTIDs(nil)
	if r.Support() != 0 || len(r.keys) != 0 {
		t.Fatal("SetTIDs(nil) must empty the set")
	}
}

func TestRoaringSerializationRejectsCorruption(t *testing.T) {
	l := mk(1, 2, 3, 100, chunkSize+5, chunkSize+6)
	enc := AppendRoaringBytes(nil, NewRoaring(l))
	if _, err := RoaringFromBytes(enc); err != nil {
		t.Fatalf("clean payload rejected: %v", err)
	}
	// Truncations anywhere must fail, never panic or mis-decode.
	for cut := 1; cut < len(enc); cut++ {
		if _, err := RoaringFromBytes(enc[:cut]); err == nil {
			// A shorter prefix may only be accepted if it is itself a
			// complete payload — impossible here since count stays 6.
			t.Fatalf("truncated payload (%d of %d bytes) accepted", cut, len(enc))
		}
	}
	corrupt := func(off int, v byte) []byte {
		c := append([]byte(nil), enc...)
		c[off] = v
		return c
	}
	// Header count mismatch.
	if _, err := RoaringFromBytes(corrupt(0, 99)); err == nil {
		t.Fatal("count mismatch accepted")
	}
	// Unknown container kind in the first descriptor.
	if _, err := RoaringFromBytes(corrupt(roaringPayloadHeader+2, 7)); err == nil {
		t.Fatal("unknown container kind accepted")
	}
	// Unsorted keys: overwrite the second descriptor's key with the first's.
	if _, err := RoaringFromBytes(corrupt(roaringPayloadHeader+8, enc[roaringPayloadHeader])); err == nil {
		t.Fatal("non-increasing keys accepted")
	}
	// Zero-container payload with a nonzero header length.
	bad := append([]byte(nil), enc[:roaringPayloadHeader]...)
	bad[4], bad[5], bad[6], bad[7] = 0, 0, 0, 0
	if _, err := RoaringFromBytes(bad); err == nil {
		t.Fatal("zero container count accepted")
	}
	// Empty payload is the empty set.
	if r, err := RoaringFromBytes(nil); err != nil || r.Support() != 0 {
		t.Fatalf("empty payload: %v, support %d", err, r.Support())
	}
}

func TestRoaringSerializationUnalignedCopies(t *testing.T) {
	// Decoding from an odd offset must fall back to copying and still
	// produce the same set (the zero-copy path needs 8-byte alignment).
	rng := rand.New(rand.NewSource(73))
	for trial := 0; trial < 50; trial++ {
		l := randomList(rng, 200, 5*chunkSize)
		enc := AppendRoaringBytes(nil, NewRoaring(l))
		buf := append(make([]byte, 1, 1+len(enc)), enc...)
		dec, err := RoaringFromBytes(buf[1:])
		if err != nil {
			t.Fatalf("unaligned decode: %v", err)
		}
		if !equalTIDs(dec.TIDs(), l) {
			t.Fatalf("unaligned decode lost tids")
		}
	}
}

func TestRoaringCloneIndependence(t *testing.T) {
	l := seqList(100, 1000)
	r := NewRoaring(l)
	c := r.Clone()
	r.SetTIDs(mk(1, 2, 3))
	if !equalTIDs(c.TIDs(), l) {
		t.Fatal("Clone shares storage with the original")
	}
}

// TestRoaringDiffAllKindPairs drives ctrAndNot across every (a kind,
// b kind) pairing by constructing shape-forcing operands in one chunk.
func TestRoaringDiffAllKindPairs(t *testing.T) {
	shapes := map[string]List{
		"array": {3, 700, 1400, 9000, 30000},
		"bitmap": func() List {
			var l List
			for i := 0; i < 2048; i += 2 {
				l = append(l, itemset.TID(i))
			}
			return l
		}(),
		"run": seqList(500, 4000),
	}
	for an, a := range shapes {
		for bn, b := range shapes {
			var ks KernelStats
			got, _ := DiffSets(nil, NewRoaring(a), NewRoaring(b), &ks)
			if want := Diff(a, b); !equalTIDs(TIDsOf(got), want) {
				t.Fatalf("%s \\ %s: got %d tids, want %d", an, bn, got.Support(), len(want))
			}
			gotI, _ := IntersectSets(nil, NewRoaring(a), NewRoaring(b), &ks)
			if want := Intersect(a, b); !equalTIDs(TIDsOf(gotI), want) {
				t.Fatalf("%s ∩ %s: got %d tids, want %d", an, bn, gotI.Support(), len(want))
			}
		}
	}
}
