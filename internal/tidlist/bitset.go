package tidlist

import (
	"math/bits"

	"repro/internal/itemset"
)

// wordBits is the number of TIDs packed into one Bitset word.
const wordBits = 64

// Bitset is the dense tid-set representation: 64 transaction identifiers
// per machine word, anchored at a word-aligned base TID so a class whose
// tids cluster far from zero stays compact. Intersection is word-wise
// AND + popcount, difference is AND NOT — the vectorized kernels that
// follow-up work (bitmap FIM on many-core, RDD-Eclat's bitset variants)
// identifies as the lever behind the vertical layout's speed.
//
// The zero value is the empty set. Bitsets are value-mutated only by the
// kernel functions in this package; everywhere else they are treated as
// immutable, like List.
type Bitset struct {
	base  itemset.TID // TID of bit 0; always a multiple of 64
	words []uint64
	count int // cached popcount of words
}

// NewBitset packs a sorted tid-list into a Bitset spanning exactly the
// list's word range. An empty list yields an empty Bitset.
func NewBitset(l List) *Bitset {
	b := &Bitset{}
	b.SetTIDs(l)
	return b
}

// SetTIDs repacks b to hold exactly the tids of l, reusing b's word
// storage when it is large enough.
func (b *Bitset) SetTIDs(l List) {
	if len(l) == 0 {
		b.base, b.words, b.count = 0, b.words[:0], 0
		return
	}
	first, last := l[0], l[len(l)-1]
	b.base = first &^ (wordBits - 1)
	n := int(last/wordBits-b.base/wordBits) + 1
	if cap(b.words) < n {
		b.words = make([]uint64, n)
	} else {
		b.words = b.words[:n]
		clear(b.words)
	}
	for _, t := range l {
		off := t - b.base
		b.words[off/wordBits] |= 1 << (uint(off) % wordBits)
	}
	b.count = len(l)
}

// Support returns the cardinality (cached; O(1)).
func (b *Bitset) Support() int { return b.count }

// SizeBytes returns the encoded size of the dense representation:
// 8 bytes per word plus the 8-byte base header — the figure the
// communication and disk cost models charge when a bitset crosses the
// wire or is written out.
func (b *Bitset) SizeBytes() int64 {
	if len(b.words) == 0 {
		return 0
	}
	return 8 + 8*int64(len(b.words))
}

// Repr identifies the representation.
func (b *Bitset) Repr() Repr { return ReprBitset }

// AppendTIDs appends the members in increasing TID order to dst.
func (b *Bitset) AppendTIDs(dst List) List {
	for wi, w := range b.words {
		base := b.base + itemset.TID(wi*wordBits)
		for w != 0 {
			dst = append(dst, base+itemset.TID(bits.TrailingZeros64(w)))
			w &= w - 1
		}
	}
	return dst
}

// TIDs materializes the set as a sorted tid-list.
func (b *Bitset) TIDs() List { return b.AppendTIDs(make(List, 0, b.count)) }

// Contains reports whether t is a member (O(1) — the probe the mixed
// sparse×dense kernel is built on).
func (b *Bitset) Contains(t itemset.TID) bool {
	if t < b.base {
		return false
	}
	off := t - b.base
	wi := int(off / wordBits)
	if wi >= len(b.words) {
		return false
	}
	return b.words[wi]&(1<<(uint(off)%wordBits)) != 0
}

// Clone returns an independent copy of b.
func (b *Bitset) Clone() *Bitset {
	return &Bitset{base: b.base, words: append([]uint64(nil), b.words...), count: b.count}
}

// overlap computes the word-index window shared by a and b: ai/bi are the
// first overlapping word indices into a.words and b.words, and n is the
// number of shared words (0 when the spans are disjoint).
func overlap(a, b *Bitset) (ai, bi, n int) {
	if len(a.words) == 0 || len(b.words) == 0 {
		return 0, 0, 0
	}
	aw0, bw0 := int(a.base/wordBits), int(b.base/wordBits)
	lo := max(aw0, bw0)
	hi := min(aw0+len(a.words), bw0+len(b.words))
	if hi <= lo {
		return 0, 0, 0
	}
	return lo - aw0, lo - bw0, hi - lo
}

// reuseWords returns a word buffer of length n, reusing dst's storage
// when possible (dst may be nil).
func reuseWords(dst *Bitset, n int) *Bitset {
	if dst == nil {
		dst = &Bitset{}
	}
	if cap(dst.words) < n {
		dst.words = make([]uint64, n)
	} else {
		dst.words = dst.words[:n]
	}
	return dst
}

// intersectBitset intersects a and b into dst (reused, may be nil) and
// returns the result together with the number of words touched. The
// result spans the overlap window; trailing/leading zero words are
// trimmed so SizeBytes reflects the true extent.
func intersectBitset(dst, a, b *Bitset) (*Bitset, int) {
	ai, bi, n := overlap(a, b)
	dst = reuseWords(dst, n)
	dst.base = a.base + itemset.TID(ai*wordBits)
	count := 0
	for i := 0; i < n; i++ {
		w := a.words[ai+i] & b.words[bi+i]
		dst.words[i] = w
		count += bits.OnesCount64(w)
	}
	dst.count = count
	dst.trim()
	return dst, n
}

// intersectBitsetSC is intersectBitset with the support-bound short
// circuit of section 5.3 transplanted to words: after each word the
// result can gain at most min(remaining popcount of a, of b, 64 per
// remaining word) more members; the scan aborts once even that bound
// cannot reach minsup. On abort the returned bitset holds an unusable
// partial prefix (retained only so callers can reuse its storage) and
// ok is false. ops is the number of words touched either way.
func intersectBitsetSC(dst, a, b *Bitset, minsup int) (result *Bitset, ops int, ok bool) {
	if min(a.count, b.count) < minsup {
		return reuseWords(dst, 0), 0, false
	}
	ai, bi, n := overlap(a, b)
	dst = reuseWords(dst, n)
	dst.base = a.base + itemset.TID(ai*wordBits)
	count := 0
	remA, remB := a.count, b.count
	for i := 0; i < n; i++ {
		wa, wb := a.words[ai+i], b.words[bi+i]
		w := wa & wb
		dst.words[i] = w
		count += bits.OnesCount64(w)
		remA -= bits.OnesCount64(wa)
		remB -= bits.OnesCount64(wb)
		ops++
		// Remaining matches are bounded by the unconsumed popcount of
		// either operand and by the raw capacity of the remaining words.
		bound := min(remA, remB, (n-1-i)*wordBits)
		if count+bound < minsup {
			dst.words = dst.words[:i+1]
			dst.count = count
			return dst, ops, false
		}
	}
	dst.count = count
	if count < minsup {
		return dst, ops, false
	}
	dst.trim()
	return dst, ops, true
}

// diffBitset computes a \ b into dst (reused, may be nil) as AND NOT,
// returning the result and the words touched. Words of a outside b's
// span are copied unchanged.
func diffBitset(dst, a, b *Bitset) (*Bitset, int) {
	n := len(a.words)
	dst = reuseWords(dst, n)
	dst.base = a.base
	ai, bi, on := overlap(a, b)
	count := 0
	for i := 0; i < n; i++ {
		w := a.words[i]
		if i >= ai && i < ai+on {
			w &^= b.words[bi+(i-ai)]
		}
		dst.words[i] = w
		count += bits.OnesCount64(w)
	}
	dst.count = count
	dst.trim()
	return dst, n
}

// trim drops leading and trailing zero words, keeping base word-aligned.
func (b *Bitset) trim() {
	lo := 0
	for lo < len(b.words) && b.words[lo] == 0 {
		lo++
	}
	hi := len(b.words)
	for hi > lo && b.words[hi-1] == 0 {
		hi--
	}
	if lo == hi {
		b.base, b.words = 0, b.words[:0]
		return
	}
	if lo > 0 {
		copy(b.words, b.words[lo:hi])
		b.base += itemset.TID(lo * wordBits)
	}
	b.words = b.words[:hi-lo]
}
