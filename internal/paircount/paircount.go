// Package paircount implements the upper-triangular 2-itemset counter used
// by Eclat's initialization phase (paper section 5.1: "For computing
// 2-itemsets we use an upper triangular array, local to each processor,
// indexed by the items in the database in both dimensions") and by the
// pass-2 optimization of the horizontal algorithms. With m items it holds
// C(m,2) counters in one contiguous slice, so a sum-reduction across
// processors is a single vector add — exactly the shared-region reduction
// the paper performs over the Memory Channel.
package paircount

import (
	"fmt"

	"repro/internal/db"
	"repro/internal/itemset"
	"repro/internal/tidlist"
)

// Counter counts occurrences of every unordered item pair over an
// m-item universe.
type Counter struct {
	m      int
	counts []int32
}

// New returns a zeroed counter for an m-item universe.
func New(m int) *Counter {
	if m < 0 {
		panic(fmt.Sprintf("paircount: negative universe %d", m))
	}
	return &Counter{m: m, counts: make([]int32, int64(m)*int64(m-1)/2)}
}

// NumItems returns the universe size m.
func (c *Counter) NumItems() int { return c.m }

// NumCells returns C(m,2), the reduction vector length (the paper's
// "array of size (m choose 2) on the shared Memory Channel region").
func (c *Counter) NumCells() int { return len(c.counts) }

// index maps a pair (a < b) to its triangular slot.
func (c *Counter) index(a, b itemset.Item) int {
	// Row a occupies (m-1) + (m-2) + ... slots; standard closed form.
	ia, ib := int64(a), int64(b)
	m := int64(c.m)
	return int(ia*(2*m-ia-1)/2 + (ib - ia - 1))
}

// AddTransaction counts all C(len,2) pairs of one transaction.
func (c *Counter) AddTransaction(items itemset.Itemset) {
	for i := 0; i < len(items); i++ {
		for j := i + 1; j < len(items); j++ {
			c.counts[c.index(items[i], items[j])]++
		}
	}
}

// AddPartition counts every transaction of a partition and returns the
// number of pair increments performed (the (l choose 2) * |D| operation
// count of section 4.2).
func (c *Counter) AddPartition(part *db.Database) (ops int64) {
	for _, tx := range part.Transactions {
		l := int64(len(tx.Items))
		ops += l * (l - 1) / 2
		c.AddTransaction(tx.Items)
	}
	return ops
}

// Count returns the count of the pair {a,b}; order of arguments is
// irrelevant, equal items panic (no self-pairs exist).
func (c *Counter) Count(a, b itemset.Item) int {
	if a == b {
		panic(fmt.Sprintf("paircount: self pair %d", a))
	}
	if a > b {
		a, b = b, a
	}
	return int(c.counts[c.index(a, b)])
}

// Merge adds other's counts into c: the sum-reduction step. Universes must
// match.
func (c *Counter) Merge(other *Counter) {
	if other.m != c.m {
		panic(fmt.Sprintf("paircount: merging universes %d and %d", other.m, c.m))
	}
	for i, v := range other.counts {
		c.counts[i] += v
	}
}

// Frequent returns every pair with count >= minsup, in lexicographic
// order, along with its count.
func (c *Counter) Frequent(minsup int) []FrequentPair {
	var out []FrequentPair
	idx := 0
	for a := 0; a < c.m; a++ {
		for b := a + 1; b < c.m; b++ {
			if int(c.counts[idx]) >= minsup {
				out = append(out, FrequentPair{
					Pair:  tidlist.Pair{A: itemset.Item(a), B: itemset.Item(b)},
					Count: int(c.counts[idx]),
				})
			}
			idx++
		}
	}
	return out
}

// FrequentPair is a frequent 2-itemset with its global support.
type FrequentPair struct {
	Pair  tidlist.Pair
	Count int
}

// SizeBytes is the byte size of the reduction vector, charged to the
// network model when partial counts are exchanged.
func (c *Counter) SizeBytes() int64 { return 4 * int64(len(c.counts)) }

// Counts exposes the raw triangular vector (live, not a copy) so parallel
// algorithms can sum-reduce it as a flat int32 array, exactly as the paper
// lays it out in the shared Memory Channel region.
func (c *Counter) Counts() []int32 { return c.counts }

// FromCounts wraps a reduced global vector back into a Counter over an
// m-item universe. The vector length must be C(m,2).
func FromCounts(m int, counts []int32) *Counter {
	c := New(m)
	if len(counts) != len(c.counts) {
		panic(fmt.Sprintf("paircount: vector length %d does not match C(%d,2)=%d", len(counts), m, len(c.counts)))
	}
	c.counts = counts
	return c
}
