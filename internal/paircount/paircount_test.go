package paircount

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/db"
	"repro/internal/itemset"
)

func TestIndexBijective(t *testing.T) {
	c := New(20)
	seen := map[int]bool{}
	for a := itemset.Item(0); a < 20; a++ {
		for b := a + 1; b < 20; b++ {
			i := c.index(a, b)
			if i < 0 || i >= c.NumCells() {
				t.Fatalf("index(%d,%d) = %d out of range [0,%d)", a, b, i, c.NumCells())
			}
			if seen[i] {
				t.Fatalf("index collision at (%d,%d)", a, b)
			}
			seen[i] = true
		}
	}
	if len(seen) != c.NumCells() {
		t.Fatalf("covered %d cells of %d", len(seen), c.NumCells())
	}
}

func TestCountBasics(t *testing.T) {
	c := New(5)
	c.AddTransaction(itemset.New(0, 1, 2))
	c.AddTransaction(itemset.New(1, 2, 4))
	if c.Count(1, 2) != 2 || c.Count(2, 1) != 2 {
		t.Fatalf("Count(1,2) = %d", c.Count(1, 2))
	}
	if c.Count(0, 4) != 0 {
		t.Fatal("Count(0,4) should be 0")
	}
	if c.Count(0, 1) != 1 {
		t.Fatal("Count(0,1) should be 1")
	}
}

func TestSelfPairPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(3).Count(1, 1)
}

func TestMergeEqualsWholeScan(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d := &db.Database{NumItems: 15}
	for i := 0; i < 300; i++ {
		items := make([]itemset.Item, 1+rng.Intn(6))
		for j := range items {
			items[j] = itemset.Item(rng.Intn(15))
		}
		d.Transactions = append(d.Transactions, db.Transaction{TID: itemset.TID(i), Items: itemset.New(items...)})
	}
	whole := New(15)
	whole.AddPartition(d)
	for _, np := range []int{2, 3, 7} {
		merged := New(15)
		for _, p := range d.Partition(np) {
			local := New(15)
			local.AddPartition(p)
			merged.Merge(local)
		}
		for a := itemset.Item(0); a < 15; a++ {
			for b := a + 1; b < 15; b++ {
				if merged.Count(a, b) != whole.Count(a, b) {
					t.Fatalf("np=%d: merged(%d,%d)=%d whole=%d", np, a, b, merged.Count(a, b), whole.Count(a, b))
				}
			}
		}
	}
}

func TestMergeUniverseMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(3).Merge(New(4))
}

func TestFrequentSortedAndThresholded(t *testing.T) {
	c := New(4)
	c.AddTransaction(itemset.New(0, 1))
	c.AddTransaction(itemset.New(0, 1))
	c.AddTransaction(itemset.New(0, 2))
	freq := c.Frequent(2)
	if len(freq) != 1 || freq[0].Pair.A != 0 || freq[0].Pair.B != 1 || freq[0].Count != 2 {
		t.Fatalf("Frequent = %v", freq)
	}
	all := c.Frequent(1)
	for i := 1; i < len(all); i++ {
		prev, cur := all[i-1].Pair, all[i].Pair
		if prev.A > cur.A || (prev.A == cur.A && prev.B >= cur.B) {
			t.Fatalf("Frequent not lexicographically sorted: %v", all)
		}
	}
	if len(c.Frequent(0)) != c.NumCells() {
		t.Fatal("minsup 0 should return every pair")
	}
}

func TestOpsAccounting(t *testing.T) {
	d := &db.Database{NumItems: 10, Transactions: []db.Transaction{
		{TID: 0, Items: itemset.New(1, 2, 3, 4)}, // C(4,2)=6
		{TID: 1, Items: itemset.New(5)},          // 0
	}}
	c := New(10)
	if ops := c.AddPartition(d); ops != 6 {
		t.Fatalf("ops = %d, want 6", ops)
	}
}

// Property: counts match a map-based oracle for random transactions.
func TestCounterQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const m = 12
		c := New(m)
		oracle := map[[2]itemset.Item]int{}
		for i := 0; i < 50; i++ {
			items := make([]itemset.Item, rng.Intn(6))
			for j := range items {
				items[j] = itemset.Item(rng.Intn(m))
			}
			tx := itemset.New(items...)
			c.AddTransaction(tx)
			for x := 0; x < len(tx); x++ {
				for y := x + 1; y < len(tx); y++ {
					oracle[[2]itemset.Item{tx[x], tx[y]}]++
				}
			}
		}
		for a := itemset.Item(0); a < m; a++ {
			for b := a + 1; b < m; b++ {
				if c.Count(a, b) != oracle[[2]itemset.Item{a, b}] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestAccessorsAndFromCounts(t *testing.T) {
	c := New(4)
	if c.NumItems() != 4 {
		t.Fatalf("NumItems = %d", c.NumItems())
	}
	if c.SizeBytes() != 4*int64(c.NumCells()) {
		t.Fatalf("SizeBytes = %d", c.SizeBytes())
	}
	c.AddTransaction(itemset.New(0, 1))
	back := FromCounts(4, c.Counts())
	if back.Count(0, 1) != 1 {
		t.Fatal("FromCounts lost data")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("FromCounts with wrong length should panic")
		}
	}()
	FromCounts(4, []int32{1, 2})
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(-1)
}

func TestZeroAndOneItemUniverse(t *testing.T) {
	if New(0).NumCells() != 0 {
		t.Fatal("0-item universe should have no cells")
	}
	if New(1).NumCells() != 0 {
		t.Fatal("1-item universe should have no cells")
	}
	if New(1000).NumCells() != 499500 {
		t.Fatal("paper's N=1000 should give C(1000,2)=499500 cells")
	}
}
