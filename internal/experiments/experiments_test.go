package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// tiny returns a micro-suite that exercises every experiment in well
// under a second of real time.
func tiny() *Suite {
	return New(Config{
		Sizes: []SizeSpec{
			{Analog: "D800K", NumTx: 1500, Seed: 999},
			{Analog: "D1600K", NumTx: 3000, Seed: 1997},
		},
		SupportPct:   1.0,
		Rows:         []HP{{1, 1}, {2, 2}},
		HostMemBytes: 16 << 20,
	})
}

func TestTable1Shape(t *testing.T) {
	var buf bytes.Buffer
	tiny().Table1(&buf)
	out := buf.String()
	for _, want := range []string{"Table 1", "T10.I6.D1500", "D800K", "MB"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table1 missing %q:\n%s", want, out)
		}
	}
}

func TestFigure6Shape(t *testing.T) {
	var buf bytes.Buffer
	tiny().Figure6(&buf)
	out := buf.String()
	if !strings.Contains(out, "Figure 6") || !strings.Contains(out, "k") {
		t.Fatalf("Figure6 malformed:\n%s", out)
	}
	// At least k=1 and k=2 rows.
	if len(strings.Split(strings.TrimSpace(out), "\n")) < 4 {
		t.Fatalf("Figure6 too short:\n%s", out)
	}
}

func TestTable2AndCaching(t *testing.T) {
	s := tiny()
	var buf bytes.Buffer
	s.Table2(&buf)
	if !strings.Contains(buf.String(), "CD/E") {
		t.Fatalf("Table2 missing ratio column:\n%s", buf.String())
	}
	// A second render must reuse cached runs and produce identical output.
	var buf2 bytes.Buffer
	s.Table2(&buf2)
	if buf.String() != buf2.String() {
		t.Fatal("Table2 not deterministic across renders")
	}
}

func TestFigure7Speedups(t *testing.T) {
	s := tiny()
	var buf bytes.Buffer
	s.Figure7(&buf)
	if !strings.Contains(buf.String(), "speedup") {
		t.Fatalf("Figure7 malformed:\n%s", buf.String())
	}
}

func TestPhasesAndInversionAndHybrid(t *testing.T) {
	s := tiny()
	var buf bytes.Buffer
	s.Phases(&buf)
	if !strings.Contains(buf.String(), "transform") {
		t.Fatalf("Phases malformed:\n%s", buf.String())
	}
	buf.Reset()
	s.Inversion(&buf)
	if !strings.Contains(buf.String(), "Eclat tracks database size") {
		t.Fatalf("Inversion malformed:\n%s", buf.String())
	}
	buf.Reset()
	s.Hybrid(&buf)
	if !strings.Contains(buf.String(), "hybrid") {
		t.Fatalf("Hybrid malformed:\n%s", buf.String())
	}
}

func TestInversionNeedsTwoSizes(t *testing.T) {
	s := New(Config{
		Sizes:        []SizeSpec{{Analog: "D800K", NumTx: 500, Seed: 1}},
		SupportPct:   2,
		Rows:         []HP{{1, 1}},
		HostMemBytes: 1 << 20,
	})
	var buf bytes.Buffer
	s.Inversion(&buf)
	if !strings.Contains(buf.String(), "needs at least two") {
		t.Fatalf("expected graceful message, got:\n%s", buf.String())
	}
}

func TestUnknownAlgoPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tiny().Run("bogus", SizeSpec{Analog: "x", NumTx: 100, Seed: 1}, HP{1, 1})
}

func TestPlots(t *testing.T) {
	s := tiny()
	var buf bytes.Buffer
	s.Figure6Plot(&buf)
	if !strings.Contains(buf.String(), "Figure 6") || !strings.Contains(buf.String(), "*") {
		t.Fatalf("Figure6Plot malformed:\n%s", buf.String())
	}
	buf.Reset()
	s.Figure7Plot(&buf)
	if !strings.Contains(buf.String(), "speedup") || !strings.Contains(buf.String(), "D800K") {
		t.Fatalf("Figure7Plot malformed:\n%s", buf.String())
	}
}

func TestAllRunsEverything(t *testing.T) {
	var buf bytes.Buffer
	tiny().All(&buf)
	out := buf.String()
	for _, want := range []string{"Table 1", "Figure 6", "Table 2", "Figure 7", "Inversion", "hybrid", "regenerated in"} {
		if !strings.Contains(out, want) {
			t.Fatalf("All() missing %q", want)
		}
	}
}

func TestDensity(t *testing.T) {
	s := tiny()
	var buf bytes.Buffer
	s.Density(&buf, 800)
	out := buf.String()
	for _, want := range []string{"T5.I2", "T10.I6", "T20.I6", "CD/E"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Density missing %q:\n%s", want, out)
		}
	}
}

func TestWriteCSV(t *testing.T) {
	s := tiny()
	dir := t.TempDir()
	if err := s.WriteCSV(dir); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"figure6.csv", "table2.csv", "figure7.csv", "phases.csv"} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		lines := strings.Split(strings.TrimSpace(string(data)), "\n")
		if len(lines) < 2 {
			t.Fatalf("%s: no data rows:\n%s", name, data)
		}
		if !strings.Contains(lines[0], ",") {
			t.Fatalf("%s: header not CSV: %q", name, lines[0])
		}
	}
	if err := s.WriteCSV("/dev/null/not-a-dir"); err == nil {
		t.Fatal("unwritable directory should error")
	}
}

func TestDefaultAndQuickConfigs(t *testing.T) {
	d := Default()
	if len(d.Sizes) != 3 || len(d.Rows) != 10 {
		t.Fatalf("Default suite shape wrong: %d sizes, %d rows", len(d.Sizes), len(d.Rows))
	}
	q := Quick()
	if len(q.Sizes) >= len(d.Sizes) && len(q.Rows) >= len(d.Rows) {
		t.Fatal("Quick should be smaller than Default")
	}
	if (HP{3, 8}).T() != 24 {
		t.Fatal("HP.T wrong")
	}
}
