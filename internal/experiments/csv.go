package experiments

import (
	"encoding/csv"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"

	"repro/internal/eclat"
	"repro/internal/gen"
)

// WriteCSV regenerates the figure/table data and writes it as CSV files
// (figure6.csv, table2.csv, figure7.csv, phases.csv) into dir, ready for
// plotting. The same cached runs back the text renderings, so the two
// outputs always agree.
func (s *Suite) WriteCSV(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("experiments: %w", err)
	}

	// figure6.csv: k, then one count column per database.
	if err := s.writeCSV(filepath.Join(dir, "figure6.csv"), func(w *csv.Writer) error {
		type curve struct {
			name string
			byK  map[int]int
		}
		var curves []curve
		maxK := 0
		for _, spec := range s.cfg.Sizes {
			d := s.DB(spec)
			res, _ := eclat.MineSequential(d, d.MinSupCount(s.cfg.SupportPct))
			curves = append(curves, curve{name: gen.T10I6(spec.NumTx).Name(), byK: res.CountsByK()})
			if m := res.MaxK(); m > maxK {
				maxK = m
			}
		}
		header := []string{"k"}
		for _, c := range curves {
			header = append(header, c.name)
		}
		if err := w.Write(header); err != nil {
			return err
		}
		for k := 1; k <= maxK; k++ {
			row := []string{strconv.Itoa(k)}
			for _, c := range curves {
				row = append(row, strconv.Itoa(c.byK[k]))
			}
			if err := w.Write(row); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return err
	}

	// table2.csv: P,H,T, then per database CD seconds, Eclat seconds,
	// setup seconds, ratio.
	if err := s.writeCSV(filepath.Join(dir, "table2.csv"), func(w *csv.Writer) error {
		header := []string{"P", "H", "T"}
		for _, spec := range s.cfg.Sizes {
			header = append(header,
				spec.Analog+"_cd_s", spec.Analog+"_eclat_s", spec.Analog+"_setup_s", spec.Analog+"_ratio")
		}
		if err := w.Write(header); err != nil {
			return err
		}
		for _, hp := range s.cfg.Rows {
			row := []string{strconv.Itoa(hp.P), strconv.Itoa(hp.H), strconv.Itoa(hp.T())}
			for _, spec := range s.cfg.Sizes {
				repC, _ := s.Run("cd", spec, hp)
				repE, _ := s.Run("eclat", spec, hp)
				setup := repE.PhaseMaxNS(eclat.PhaseInit) + repE.PhaseMaxNS(eclat.PhaseTransform)
				row = append(row,
					fmt.Sprintf("%.3f", secs(repC.ElapsedNS)),
					fmt.Sprintf("%.3f", secs(repE.ElapsedNS)),
					fmt.Sprintf("%.3f", secs(setup)),
					fmt.Sprintf("%.2f", float64(repC.ElapsedNS)/float64(repE.ElapsedNS)))
			}
			if err := w.Write(row); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return err
	}

	// figure7.csv: database, P, H, T, speedup.
	if err := s.writeCSV(filepath.Join(dir, "figure7.csv"), func(w *csv.Writer) error {
		if err := w.Write([]string{"database", "P", "H", "T", "speedup"}); err != nil {
			return err
		}
		for _, spec := range s.cfg.Sizes {
			base, _ := s.Run("eclat", spec, HP{1, 1})
			rows := append([]HP(nil), s.cfg.Rows...)
			sort.SliceStable(rows, func(i, j int) bool { return rows[i].T() < rows[j].T() })
			for _, hp := range rows {
				rep, _ := s.Run("eclat", spec, hp)
				if err := w.Write([]string{
					spec.Analog, strconv.Itoa(hp.P), strconv.Itoa(hp.H), strconv.Itoa(hp.T()),
					fmt.Sprintf("%.3f", float64(base.ElapsedNS)/float64(rep.ElapsedNS)),
				}); err != nil {
					return err
				}
			}
		}
		return nil
	}); err != nil {
		return err
	}

	// phases.csv: database, P, H, init, transform, async, reduce, total.
	return s.writeCSV(filepath.Join(dir, "phases.csv"), func(w *csv.Writer) error {
		if err := w.Write([]string{"database", "P", "H", "init_s", "transform_s", "async_s", "reduce_s", "total_s"}); err != nil {
			return err
		}
		for _, spec := range s.cfg.Sizes {
			for _, hp := range s.cfg.Rows {
				rep, _ := s.Run("eclat", spec, hp)
				if err := w.Write([]string{
					spec.Analog, strconv.Itoa(hp.P), strconv.Itoa(hp.H),
					fmt.Sprintf("%.3f", secs(rep.PhaseMaxNS(eclat.PhaseInit))),
					fmt.Sprintf("%.3f", secs(rep.PhaseMaxNS(eclat.PhaseTransform))),
					fmt.Sprintf("%.3f", secs(rep.PhaseMaxNS(eclat.PhaseAsync))),
					fmt.Sprintf("%.3f", secs(rep.PhaseMaxNS(eclat.PhaseReduce))),
					fmt.Sprintf("%.3f", secs(rep.ElapsedNS)),
				}); err != nil {
					return err
				}
			}
		}
		return nil
	})
}

func (s *Suite) writeCSV(path string, fill func(*csv.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("experiments: %w", err)
	}
	w := csv.NewWriter(f)
	if err := fill(w); err != nil {
		f.Close()
		return fmt.Errorf("experiments: writing %s: %w", path, err)
	}
	w.Flush()
	if err := w.Error(); err != nil {
		f.Close()
		return fmt.Errorf("experiments: flushing %s: %w", path, err)
	}
	return f.Close()
}
