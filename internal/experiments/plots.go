package experiments

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/asciiplot"
	"repro/internal/eclat"
	"repro/internal/gen"
)

// Figure6Plot renders figure 6 as an ASCII chart (log y-axis, as in the
// paper's figure).
func (s *Suite) Figure6Plot(w io.Writer) {
	maxK := 0
	type curve struct {
		name string
		byK  map[int]int
	}
	var curves []curve
	for _, spec := range s.cfg.Sizes {
		d := s.DB(spec)
		res, _ := eclat.MineSequential(d, d.MinSupCount(s.cfg.SupportPct))
		curves = append(curves, curve{name: gen.T10I6(spec.NumTx).Name(), byK: res.CountsByK()})
		if m := res.MaxK(); m > maxK {
			maxK = m
		}
	}
	var xlabels []string
	for k := 1; k <= maxK; k++ {
		xlabels = append(xlabels, fmt.Sprintf("%d", k))
	}
	var series []asciiplot.Series
	for _, c := range curves {
		ys := make([]float64, maxK)
		for k := 1; k <= maxK; k++ {
			ys[k-1] = float64(c.byK[k])
		}
		series = append(series, asciiplot.Series{Name: c.name, Y: ys})
	}
	fmt.Fprint(w, asciiplot.Chart(
		fmt.Sprintf("Figure 6: frequent k-itemsets at %.2f%% support (log scale)", s.cfg.SupportPct),
		xlabels, series, asciiplot.Options{Width: 60, Height: 14, LogY: true}))
}

// Figure7Plot renders figure 7 as one speedup chart per database, x
// ordered by total processors.
func (s *Suite) Figure7Plot(w io.Writer) {
	rows := append([]HP(nil), s.cfg.Rows...)
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].T() < rows[j].T() })
	var xlabels []string
	for _, hp := range rows {
		xlabels = append(xlabels, fmt.Sprintf("%dx%d", hp.H, hp.P))
	}
	var series []asciiplot.Series
	for _, spec := range s.cfg.Sizes {
		base, _ := s.Run("eclat", spec, HP{1, 1})
		ys := make([]float64, len(rows))
		for i, hp := range rows {
			rep, _ := s.Run("eclat", spec, hp)
			ys[i] = float64(base.ElapsedNS) / float64(rep.ElapsedNS)
		}
		series = append(series, asciiplot.Series{Name: spec.Analog, Y: ys})
	}
	fmt.Fprint(w, asciiplot.Chart(
		"Figure 7: Eclat speedup over P=1,H=1 (x = HxP by total processors)",
		xlabels, series, asciiplot.Options{Width: 60, Height: 12}))
}
