package experiments

import (
	"fmt"
	"io"

	"repro/internal/cluster"
	"repro/internal/countdist"
	"repro/internal/db"
	"repro/internal/eclat"
	"repro/internal/gen"
)

// Density compares Eclat and Count Distribution across the
// Agrawal-Srikant workload families (T5.I2, T10.I6, T20.I6) at a fixed
// |D| and support: transaction length drives the horizontal algorithms'
// subset-enumeration cost combinatorially (each transaction of length l
// spawns C(l,k) probes per pass) while Eclat's intersection cost grows
// only with the tid-list volume — so the Eclat advantage should widen
// with density. Not part of All(): the dense family is expensive for CD
// by design.
func (s *Suite) Density(w io.Writer, numTx int) {
	if numTx <= 0 {
		numTx = 10_000
	}
	fmt.Fprintf(w, "Density sweep: CD vs Eclat across workload families (|D|=%d, support %.2f%%)\n",
		numTx, s.cfg.SupportPct)
	fmt.Fprintf(w, "%-12s %8s %10s %10s %8s\n", "workload", "avg|T|", "CD", "Eclat", "CD/E")
	families := []gen.Config{gen.T5I2(numTx), gen.T10I6(numTx), gen.T20I6(numTx)}
	for _, cfg := range families {
		d := gen.MustGenerate(cfg)
		minsup := d.MinSupCount(s.cfg.SupportPct)
		run := func(mine func(*cluster.Cluster, *db.Database, int) cluster.Report) cluster.Report {
			cl := cluster.New(s.clusterConfig(HP{P: 1, H: 2}))
			return mine(cl, d, minsup)
		}
		repE := run(func(cl *cluster.Cluster, d *db.Database, ms int) cluster.Report {
			_, rep := eclat.MineOpts(cl, d, ms, eclat.Options{})
			return rep
		})
		repC := run(func(cl *cluster.Cluster, d *db.Database, ms int) cluster.Report {
			_, rep := countdist.Mine(cl, d, ms)
			return rep
		})
		fmt.Fprintf(w, "%-12s %8.1f %9.1fs %9.1fs %8.1f\n",
			cfg.Name(), d.AvgLen(), secs(repC.ElapsedNS), secs(repE.ElapsedNS),
			float64(repC.ElapsedNS)/float64(repE.ElapsedNS))
	}
}
