// Package experiments regenerates every table and figure of the paper's
// evaluation (section 8) on the simulated cluster, at a configurable
// scale. The default suite shrinks the paper's databases sixteen-fold
// (D800K/D1600K/D3200K -> D50K/D100K/D200K) and scales the hosts' 256 MB
// of memory by the same factor, so the algorithms sit in the same
// memory-pressure regime as on the original testbed. Virtual times are
// deterministic; real wall time just bounds how long the harness takes.
//
// Like the paper's own databases, each size is an independently seeded
// generator instance. The smallest database deliberately uses a seed that
// yields an unusually itemset-rich instance, mirroring the property the
// paper observes for T10.I6.D800K ("it has more than twice as many
// frequent itemsets" as the database twice its size) and leans on in its
// section 8.1 discussion.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/cluster"
	"repro/internal/countdist"
	"repro/internal/db"
	"repro/internal/eclat"
	"repro/internal/gen"
	"repro/internal/mining"
)

// SizeSpec is one database of the suite.
type SizeSpec struct {
	// Analog is the paper database this one stands in for (e.g. "D800K").
	Analog string
	// NumTx is the scaled transaction count.
	NumTx int
	// Seed makes this an independent generator instance.
	Seed int64
}

// HP is a cluster configuration row of Table 2.
type HP struct{ P, H int }

// T returns the total processor count.
func (c HP) T() int { return c.P * c.H }

// Config parameterizes a suite.
type Config struct {
	Sizes      []SizeSpec
	SupportPct float64
	Rows       []HP
	// HostMemBytes scales the testbed's 256 MB hosts to the suite's
	// database scale.
	HostMemBytes int64
}

// Default returns the standard 1/16-scale suite.
func Default() Config {
	return Config{
		Sizes: []SizeSpec{
			{Analog: "D800K", NumTx: 50_000, Seed: 999}, // itemset-rich instance
			{Analog: "D1600K", NumTx: 100_000, Seed: 1997},
			{Analog: "D3200K", NumTx: 200_000, Seed: 7},
		},
		SupportPct: 0.1,
		// The (P,H) rows of the paper's Table 2.
		Rows: []HP{
			{1, 1}, {1, 2}, {2, 2}, {1, 4}, {4, 2}, {2, 4}, {1, 8}, {4, 4}, {2, 8}, {3, 8},
		},
		HostMemBytes: 16 << 20,
	}
}

// Quick returns a reduced suite for fast regeneration (two databases,
// five configurations).
func Quick() Config {
	c := Default()
	c.Sizes = c.Sizes[:2]
	c.Rows = []HP{{1, 1}, {1, 2}, {2, 2}, {1, 4}, {2, 4}}
	return c
}

// Suite caches generated databases and finished runs so the experiments
// can share them.
type Suite struct {
	cfg  Config
	dbs  map[string]*db.Database
	runs map[runKey]runVal
}

type runKey struct {
	algo string
	size string
	hp   HP
}

type runVal struct {
	rep      cluster.Report
	itemsets int
}

// New builds a suite from a config.
func New(cfg Config) *Suite {
	return &Suite{cfg: cfg, dbs: map[string]*db.Database{}, runs: map[runKey]runVal{}}
}

// Config returns the suite's configuration.
func (s *Suite) Config() Config { return s.cfg }

// DB generates (or returns the cached) database for a size spec.
func (s *Suite) DB(spec SizeSpec) *db.Database {
	if d, ok := s.dbs[spec.Analog]; ok {
		return d
	}
	c := gen.T10I6(spec.NumTx)
	c.Seed = spec.Seed
	d := gen.MustGenerate(c)
	s.dbs[spec.Analog] = d
	return d
}

func (s *Suite) clusterConfig(hp HP) cluster.Config {
	cfg := cluster.Default(hp.H, hp.P)
	cfg.HostMemBytes = s.cfg.HostMemBytes
	return cfg
}

// Run executes (or returns the cached run of) one algorithm on one
// database and configuration. algo is "eclat", "eclat-hybrid" or "cd".
func (s *Suite) Run(algo string, spec SizeSpec, hp HP) (cluster.Report, int) {
	key := runKey{algo: algo, size: spec.Analog, hp: hp}
	if v, ok := s.runs[key]; ok {
		return v.rep, v.itemsets
	}
	d := s.DB(spec)
	minsup := d.MinSupCount(s.cfg.SupportPct)
	cl := cluster.New(s.clusterConfig(hp))
	var res *mining.Result
	var rep cluster.Report
	switch algo {
	case "eclat":
		res, rep = eclat.MineOpts(cl, d, minsup, eclat.Options{})
	case "eclat-hybrid":
		res, rep = eclat.MineHybridOpts(cl, d, minsup, eclat.Options{})
	case "cd":
		res, rep = countdist.Mine(cl, d, minsup)
	default:
		panic(fmt.Sprintf("experiments: unknown algorithm %q", algo))
	}
	v := runVal{rep: rep, itemsets: res.Len()}
	s.runs[key] = v
	return v.rep, v.itemsets
}

func secs(ns int64) float64 { return float64(ns) / 1e9 }

// Table1 prints the database-properties table (paper Table 1): name,
// |T|, |I|, |D|, and the on-disk size.
func (s *Suite) Table1(w io.Writer) {
	fmt.Fprintf(w, "Table 1: Database properties (scaled analogs; |L|=2000, N=1000, minsup %.2f%%)\n", s.cfg.SupportPct)
	fmt.Fprintf(w, "%-14s %-8s %4s %4s %12s %10s\n", "Database", "Analog", "|T|", "|I|", "|D|", "Size")
	for _, spec := range s.cfg.Sizes {
		d := s.DB(spec)
		name := gen.T10I6(spec.NumTx).Name()
		fmt.Fprintf(w, "%-14s %-8s %4.0f %4d %12d %8.1fMB\n",
			name, spec.Analog, d.AvgLen(), 6, d.Len(), float64(d.SizeBytes())/1e6)
	}
}

// Figure6 prints the number of frequent k-itemsets per k for every
// database (paper Figure 6).
func (s *Suite) Figure6(w io.Writer) {
	fmt.Fprintf(w, "Figure 6: Number of frequent k-itemsets at %.2f%% support\n", s.cfg.SupportPct)
	type curve struct {
		name string
		byK  map[int]int
		maxK int
	}
	var curves []curve
	globalMax := 0
	for _, spec := range s.cfg.Sizes {
		d := s.DB(spec)
		res, _ := eclat.MineSequential(d, d.MinSupCount(s.cfg.SupportPct))
		c := curve{name: gen.T10I6(spec.NumTx).Name(), byK: res.CountsByK(), maxK: res.MaxK()}
		if c.maxK > globalMax {
			globalMax = c.maxK
		}
		curves = append(curves, c)
	}
	fmt.Fprintf(w, "%-4s", "k")
	for _, c := range curves {
		fmt.Fprintf(w, " %14s", c.name)
	}
	fmt.Fprintln(w)
	for k := 1; k <= globalMax; k++ {
		fmt.Fprintf(w, "%-4d", k)
		for _, c := range curves {
			fmt.Fprintf(w, " %14d", c.byK[k])
		}
		fmt.Fprintln(w)
	}
}

// Table2 prints total execution time of Eclat vs Count Distribution with
// the Eclat setup break-up and the improvement ratio (paper Table 2).
func (s *Suite) Table2(w io.Writer) {
	fmt.Fprintf(w, "Table 2: Total execution time, Eclat (E) vs Count Distribution (CD), %.2f%% support\n", s.cfg.SupportPct)
	fmt.Fprintf(w, "%-3s %-3s %-3s", "P", "H", "T")
	for _, spec := range s.cfg.Sizes {
		fmt.Fprintf(w, " | %-8s %8s %8s %7s %6s", spec.Analog, "CD", "E.Total", "E.Setup", "CD/E")
	}
	fmt.Fprintln(w)
	for _, hp := range s.cfg.Rows {
		fmt.Fprintf(w, "%-3d %-3d %-3d", hp.P, hp.H, hp.T())
		for _, spec := range s.cfg.Sizes {
			repC, _ := s.Run("cd", spec, hp)
			repE, _ := s.Run("eclat", spec, hp)
			setup := repE.PhaseMaxNS(eclat.PhaseInit) + repE.PhaseMaxNS(eclat.PhaseTransform)
			fmt.Fprintf(w, " | %-8s %7.1fs %7.1fs %6.1fs %6.1f", "",
				secs(repC.ElapsedNS), secs(repE.ElapsedNS), secs(setup),
				float64(repC.ElapsedNS)/float64(repE.ElapsedNS))
		}
		fmt.Fprintln(w)
	}
}

// Figure7 prints Eclat speedups per database across configurations
// (paper Figure 7): speedup relative to the P=1,H=1 run.
func (s *Suite) Figure7(w io.Writer) {
	fmt.Fprintf(w, "Figure 7: Eclat parallel speedup (relative to P=1,H=1)\n")
	for _, spec := range s.cfg.Sizes {
		base, _ := s.Run("eclat", spec, HP{1, 1})
		fmt.Fprintf(w, "%s (%s):\n", gen.T10I6(spec.NumTx).Name(), spec.Analog)
		rows := append([]HP(nil), s.cfg.Rows...)
		sort.SliceStable(rows, func(i, j int) bool { return rows[i].T() < rows[j].T() })
		for _, hp := range rows {
			if hp.T() == 1 {
				continue
			}
			rep, _ := s.Run("eclat", spec, hp)
			fmt.Fprintf(w, "  P=%d,H=%d,T=%-2d  speedup %5.2f  (total %6.1fs)\n",
				hp.P, hp.H, hp.T(), float64(base.ElapsedNS)/float64(rep.ElapsedNS), secs(rep.ElapsedNS))
		}
	}
}

// Phases prints the per-phase break-up of Eclat (the section 8.1
// observation that the transformation dominates).
func (s *Suite) Phases(w io.Writer) {
	fmt.Fprintf(w, "Eclat phase break-up (max over processors)\n")
	fmt.Fprintf(w, "%-8s %-3s %-3s %8s %8s %10s %8s %8s %9s\n",
		"DB", "P", "H", "init", "transform", "async", "reduce", "total", "setup%%")
	for _, spec := range s.cfg.Sizes {
		for _, hp := range []HP{{1, 1}, {2, 2}, {1, 8}} {
			rep, _ := s.Run("eclat", spec, hp)
			init := rep.PhaseMaxNS(eclat.PhaseInit)
			tr := rep.PhaseMaxNS(eclat.PhaseTransform)
			as := rep.PhaseMaxNS(eclat.PhaseAsync)
			red := rep.PhaseMaxNS(eclat.PhaseReduce)
			fmt.Fprintf(w, "%-8s %-3d %-3d %7.1fs %8.1fs %9.1fs %7.1fs %7.1fs %8.0f%%\n",
				spec.Analog, hp.P, hp.H, secs(init), secs(tr), secs(as), secs(red),
				secs(rep.ElapsedNS), 100*float64(init+tr)/float64(rep.ElapsedNS))
		}
	}
}

// Inversion reproduces the section 8.1 observation: the smaller database
// is an itemset-richer instance, which makes Count Distribution slower on
// it than on the database twice its size, while Eclat tracks database
// size.
func (s *Suite) Inversion(w io.Writer) {
	if len(s.cfg.Sizes) < 2 {
		fmt.Fprintln(w, "inversion experiment needs at least two database sizes")
		return
	}
	small, big := s.cfg.Sizes[0], s.cfg.Sizes[1]
	hp := HP{1, 1}
	dSmall, dBig := s.DB(small), s.DB(big)
	resSmall, _ := eclat.MineSequential(dSmall, dSmall.MinSupCount(s.cfg.SupportPct))
	resBig, _ := eclat.MineSequential(dBig, dBig.MinSupCount(s.cfg.SupportPct))
	repCS, _ := s.Run("cd", small, hp)
	repCB, _ := s.Run("cd", big, hp)
	repES, _ := s.Run("eclat", small, hp)
	repEB, _ := s.Run("eclat", big, hp)
	fmt.Fprintf(w, "Inversion (section 8.1): itemset-rich small database vs larger database\n")
	fmt.Fprintf(w, "%-8s %10s %12s %10s %10s\n", "DB", "|D|", "|frequent|", "CD", "Eclat")
	fmt.Fprintf(w, "%-8s %10d %12d %9.1fs %9.1fs\n", small.Analog, dSmall.Len(), resSmall.Len(), secs(repCS.ElapsedNS), secs(repES.ElapsedNS))
	fmt.Fprintf(w, "%-8s %10d %12d %9.1fs %9.1fs\n", big.Analog, dBig.Len(), resBig.Len(), secs(repCB.ElapsedNS), secs(repEB.ElapsedNS))
	fmt.Fprintf(w, "CD slower on the smaller, itemset-richer database: %v\n", repCS.ElapsedNS > repCB.ElapsedNS)
	fmt.Fprintf(w, "Eclat tracks database size instead: %v\n", repES.ElapsedNS < repEB.ElapsedNS)
}

// Hybrid compares flat Eclat with the hybrid host-level parallelization
// (the paper's future-work proposal) on multi-processor hosts.
func (s *Suite) Hybrid(w io.Writer) {
	fmt.Fprintf(w, "Hybrid Eclat (host-level partitioning, section 8.1 future work)\n")
	fmt.Fprintf(w, "%-8s %-3s %-3s %10s %10s %8s\n", "DB", "P", "H", "flat", "hybrid", "gain")
	for _, spec := range s.cfg.Sizes {
		for _, hp := range []HP{{2, 2}, {4, 2}, {2, 4}, {4, 4}} {
			repF, _ := s.Run("eclat", spec, hp)
			repH, _ := s.Run("eclat-hybrid", spec, hp)
			fmt.Fprintf(w, "%-8s %-3d %-3d %9.1fs %9.1fs %7.2fx\n",
				spec.Analog, hp.P, hp.H, secs(repF.ElapsedNS), secs(repH.ElapsedNS),
				float64(repF.ElapsedNS)/float64(repH.ElapsedNS))
		}
	}
}

// All runs every experiment in paper order.
func (s *Suite) All(w io.Writer) {
	start := time.Now()
	s.Table1(w)
	fmt.Fprintln(w)
	s.Figure6(w)
	fmt.Fprintln(w)
	s.Table2(w)
	fmt.Fprintln(w)
	s.Figure7(w)
	fmt.Fprintln(w)
	s.Phases(w)
	fmt.Fprintln(w)
	s.Inversion(w)
	fmt.Fprintln(w)
	s.Hybrid(w)
	fmt.Fprintf(w, "\n(regenerated in %v wall time; virtual times are deterministic)\n", time.Since(start).Round(time.Second))
}
