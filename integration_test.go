package repro

// Cross-algorithm integration tests: every miner in the repository must
// produce the identical (itemset -> support) answer on the same inputs,
// across randomized databases, supports, and cluster shapes — the
// repository's strongest correctness guarantee.

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/apriori"
	"repro/internal/canddist"
	"repro/internal/cluster"
	"repro/internal/countdist"
	"repro/internal/datadist"
	"repro/internal/db"
	"repro/internal/dhp"
	"repro/internal/eclat"
	"repro/internal/mining"
	"repro/internal/partition"
	"repro/internal/sampling"
	"repro/internal/testutil"
)

type minerFunc func(d *db.Database, minsup int, hp [2]int) *mining.Result

var allMiners = map[string]minerFunc{
	"apriori": func(d *db.Database, minsup int, _ [2]int) *mining.Result {
		res, _, _ := apriori.Mine(context.Background(), d, minsup)
		return res
	},
	"eclat-seq": func(d *db.Database, minsup int, _ [2]int) *mining.Result {
		res, _ := eclat.MineSequential(d, minsup)
		return res
	},
	"eclat-par": func(d *db.Database, minsup int, hp [2]int) *mining.Result {
		res, _ := eclat.MineOpts(cluster.New(cluster.Default(hp[0], hp[1])), d, minsup, eclat.Options{})
		return res
	},
	"eclat-hybrid": func(d *db.Database, minsup int, hp [2]int) *mining.Result {
		res, _ := eclat.MineHybridOpts(cluster.New(cluster.Default(hp[0], hp[1])), d, minsup, eclat.Options{})
		return res
	},
	"countdist": func(d *db.Database, minsup int, hp [2]int) *mining.Result {
		res, _ := countdist.Mine(cluster.New(cluster.Default(hp[0], hp[1])), d, minsup)
		return res
	},
	"countdist-tri": func(d *db.Database, minsup int, hp [2]int) *mining.Result {
		res, _ := countdist.MineOpts(cluster.New(cluster.Default(hp[0], hp[1])), d, minsup,
			countdist.Options{TriangularPass2: true})
		return res
	},
	"datadist": func(d *db.Database, minsup int, hp [2]int) *mining.Result {
		res, _ := datadist.Mine(cluster.New(cluster.Default(hp[0], hp[1])), d, minsup)
		return res
	},
	"canddist": func(d *db.Database, minsup int, hp [2]int) *mining.Result {
		res, _ := canddist.Mine(cluster.New(cluster.Default(hp[0], hp[1])), d, minsup)
		return res
	},
	"eclat-noshortcircuit": func(d *db.Database, minsup int, _ [2]int) *mining.Result {
		res, _, _ := eclat.MineSequentialOpts(context.Background(), d, minsup, eclat.Options{NoShortCircuit: true})
		return res
	},
	"eclat-roundrobin": func(d *db.Database, minsup int, hp [2]int) *mining.Result {
		res, _ := eclat.MineOpts(cluster.New(cluster.Default(hp[0], hp[1])), d, minsup,
			eclat.Options{RoundRobinSchedule: true})
		return res
	},
	"eclat-supportweighted": func(d *db.Database, minsup int, hp [2]int) *mining.Result {
		res, _ := eclat.MineOpts(cluster.New(cluster.Default(hp[0], hp[1])), d, minsup,
			eclat.Options{SupportWeightedSchedule: true})
		return res
	},
	"eclat-external": func(d *db.Database, minsup int, hp [2]int) *mining.Result {
		res, _ := eclat.MineOpts(cluster.New(cluster.Default(hp[0], hp[1])), d, minsup,
			eclat.Options{ExternalTransform: true})
		return res
	},
	"ccpd-sharedtree": func(d *db.Database, minsup int, hp [2]int) *mining.Result {
		res, _ := countdist.MineOpts(cluster.New(cluster.Default(hp[0], hp[1])), d, minsup,
			countdist.Options{SharedTree: true})
		return res
	},
	"partition": func(d *db.Database, minsup int, hp [2]int) *mining.Result {
		res, _ := partition.Mine(d, minsup, hp[0]*hp[1]+1)
		return res
	},
	"sampling": func(d *db.Database, minsup int, hp [2]int) *mining.Result {
		res, _ := sampling.Mine(d, minsup, sampling.Options{Seed: int64(hp[0]*10 + hp[1])})
		return res
	},
	"dhp": func(d *db.Database, minsup int, _ [2]int) *mining.Result {
		res, _ := dhp.Mine(d, minsup, dhp.Options{})
		return res
	},
	"eclat-diffsets": func(d *db.Database, minsup int, _ [2]int) *mining.Result {
		res, _, _ := eclat.MineSequentialDiffsetsOpts(context.Background(), d, minsup, eclat.Options{})
		return res
	},
}

func TestAllMinersAgreeWithBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	shapes := [][2]int{{1, 1}, {2, 2}, {4, 1}, {1, 4}}
	for trial := 0; trial < 6; trial++ {
		d := testutil.RandomDB(rng, 120+trial*40, 10+trial, 6)
		minsup := 3 + trial
		want := testutil.BruteForce(d, minsup)
		if err := want.Verify(); err != nil {
			t.Fatalf("oracle inconsistent: %v", err)
		}
		hp := shapes[trial%len(shapes)]
		for name, mine := range allMiners {
			got := mine(d, minsup, hp)
			if !mining.Equal(got, want) {
				t.Fatalf("trial %d, %s (H=%d,P=%d) disagrees with brute force:\n%s",
					trial, name, hp[0], hp[1], mining.Diff(got, want))
			}
		}
	}
}

func TestResultIndependentOfClusterShape(t *testing.T) {
	rng := rand.New(rand.NewSource(4096))
	d := testutil.RandomDB(rng, 250, 14, 7)
	minsup := 5
	base, _ := eclat.MineSequential(d, minsup)
	for _, name := range []string{"eclat-par", "eclat-hybrid", "countdist", "datadist", "canddist"} {
		mine := allMiners[name]
		for _, hp := range [][2]int{{1, 1}, {1, 2}, {2, 1}, {2, 2}, {3, 2}, {2, 3}, {1, 8}} {
			got := mine(d, minsup, hp)
			if !mining.Equal(got, base) {
				t.Fatalf("%s result depends on cluster shape H=%d P=%d:\n%s",
					name, hp[0], hp[1], mining.Diff(got, base))
			}
		}
	}
}

func TestGeneratedDataAgreement(t *testing.T) {
	// Same check on the paper's generator output (structured, skewed)
	// rather than uniform-random transactions.
	d, err := Generate(StandardConfig(2000))
	if err != nil {
		t.Fatal(err)
	}
	minsup := d.MinSupCount(1.0)
	want, _, _ := apriori.Mine(context.Background(), d, minsup)
	for _, name := range []string{"eclat-seq", "eclat-par", "countdist", "canddist"} {
		got := allMiners[name](d, minsup, [2]int{2, 2})
		if !mining.Equal(got, want) {
			t.Fatalf("%s disagrees on generated data:\n%s", name, mining.Diff(got, want))
		}
	}
	if err := want.Verify(); err != nil {
		t.Fatal(err)
	}
}
